//! Global (dataset-level) explanations: aggregate CREW's per-pair cluster
//! explanations over many pairs to summarise *what the model as a whole
//! relies on* — which attributes, and which recurring word groups.
//!
//! Local explainers answer "why did the model say match here?"; analysts
//! also ask "what drives this matcher in general?". Aggregating cluster
//! explanations gives that view without any extra model queries.

use crate::crew::Crew;
use crate::explanation::ClusterExplanation;
use em_data::{Dataset, Schema};
use em_matchers::Matcher;
use std::collections::HashMap;

/// Importance summary of one attribute across explained pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeImportance {
    pub attribute: String,
    /// Mean absolute attribution mass landing on this attribute's words.
    pub mean_abs_mass: f64,
    /// Share of pairs where this attribute hosts the top cluster.
    pub top_cluster_share: f64,
}

/// A recurring word observed in high-impact clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct RecurringWord {
    pub word: String,
    pub attribute: String,
    /// Occurrences in top-ranked clusters across explained pairs.
    pub occurrences: usize,
    /// Mean signed cluster weight when it occurs.
    pub mean_weight: f64,
}

/// Dataset-level aggregate of per-pair CREW explanations.
#[derive(Debug, Clone)]
pub struct GlobalExplanation {
    /// Pairs successfully explained.
    pub pairs_explained: usize,
    /// Attribute importances, sorted by mass descending.
    pub attributes: Vec<AttributeImportance>,
    /// Most recurrent words of top clusters, sorted by occurrences.
    pub recurring_words: Vec<RecurringWord>,
    /// Mean number of clusters selected per pair.
    pub mean_clusters: f64,
    /// Mean group-surrogate R².
    pub mean_group_r2: f64,
}

impl GlobalExplanation {
    /// Render as a compact text report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Global CREW explanation over {} pairs (mean {:.1} clusters/pair, mean group R² {:.3})\n",
            self.pairs_explained, self.mean_clusters, self.mean_group_r2
        );
        out.push_str("attribute importance:\n");
        for a in &self.attributes {
            out.push_str(&format!(
                "  {:<16} mass {:.3}  top-cluster share {:.2}\n",
                a.attribute, a.mean_abs_mass, a.top_cluster_share
            ));
        }
        out.push_str("recurring top-cluster words:\n");
        for w in self.recurring_words.iter().take(15) {
            out.push_str(&format!(
                "  {:<20} ({}) ×{}  mean weight {:+.3}\n",
                w.word, w.attribute, w.occurrences, w.mean_weight
            ));
        }
        out
    }
}

/// Aggregate per-pair explanations into a global one.
///
/// `top_clusters` limits which clusters of each pair feed the recurring
/// word statistics (1 = only the strongest cluster).
pub fn aggregate_explanations(
    explanations: &[ClusterExplanation],
    schema: &Schema,
    top_clusters: usize,
) -> Result<GlobalExplanation, crate::ExplainError> {
    if explanations.is_empty() {
        return Err(crate::ExplainError::NoSamples);
    }
    let n_attrs = schema.len();
    let mut attr_mass = vec![0.0f64; n_attrs];
    let mut attr_top = vec![0usize; n_attrs];
    let mut word_stats: HashMap<(String, usize), (usize, f64)> = HashMap::new();
    let mut cluster_counts = Vec::with_capacity(explanations.len());
    let mut r2s = Vec::with_capacity(explanations.len());

    for ce in explanations {
        cluster_counts.push(ce.selected_k as f64);
        r2s.push(ce.group_r2);
        // Attribute mass from the word-level attribution.
        for (w, &weight) in ce.word_level.words.iter().zip(&ce.word_level.weights) {
            if w.attribute < n_attrs {
                attr_mass[w.attribute] += weight.abs();
            }
        }
        // Top cluster's dominant attribute.
        if let Some(top) = ce.clusters.first() {
            let mut counts = vec![0usize; n_attrs];
            for &i in &top.member_indices {
                let a = ce.word_level.words[i].attribute;
                if a < n_attrs {
                    counts[a] += 1;
                }
            }
            if let Some((best_attr, _)) = counts.iter().enumerate().max_by_key(|&(_, c)| *c) {
                attr_top[best_attr] += 1;
            }
        }
        // Recurring words from the strongest clusters.
        for cluster in ce.clusters.iter().take(top_clusters) {
            for &i in &cluster.member_indices {
                let w = &ce.word_level.words[i];
                let entry = word_stats
                    .entry((w.text.clone(), w.attribute))
                    .or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += cluster.weight;
            }
        }
    }

    let n = explanations.len() as f64;
    let mut attributes: Vec<AttributeImportance> = (0..n_attrs)
        .map(|a| AttributeImportance {
            attribute: schema.name(a).to_string(),
            mean_abs_mass: attr_mass[a] / n,
            top_cluster_share: attr_top[a] as f64 / n,
        })
        .collect();
    attributes.sort_by(|x, y| y.mean_abs_mass.partial_cmp(&x.mean_abs_mass).unwrap());

    let mut recurring_words: Vec<RecurringWord> = word_stats
        .into_iter()
        .map(|((word, attr), (occ, weight_sum))| RecurringWord {
            word,
            attribute: schema.name(attr.min(n_attrs - 1)).to_string(),
            occurrences: occ,
            mean_weight: weight_sum / occ as f64,
        })
        .collect();
    recurring_words.sort_by(|a, b| {
        b.occurrences
            .cmp(&a.occurrences)
            .then(
                b.mean_weight
                    .abs()
                    .partial_cmp(&a.mean_weight.abs())
                    .unwrap(),
            )
            .then(a.word.cmp(&b.word))
    });

    Ok(GlobalExplanation {
        pairs_explained: explanations.len(),
        attributes,
        recurring_words,
        mean_clusters: em_linalg::stats::mean(&cluster_counts),
        mean_group_r2: em_linalg::stats::mean(&r2s),
    })
}

/// Explain up to `max_pairs` pairs of a dataset and aggregate. Pairs whose
/// explanation fails (e.g. empty records) are skipped.
pub fn explain_dataset(
    crew: &Crew,
    matcher: &dyn Matcher,
    dataset: &Dataset,
    max_pairs: usize,
    top_clusters: usize,
) -> Result<GlobalExplanation, crate::ExplainError> {
    let mut explanations = Vec::new();
    for ex in dataset.examples().iter().take(max_pairs) {
        match crew.explain_clusters(matcher, &ex.pair) {
            Ok(ce) => explanations.push(ce),
            Err(crate::ExplainError::EmptyPair) => continue,
            Err(e) => return Err(e),
        }
    }
    aggregate_explanations(&explanations, dataset.schema(), top_clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crew::CrewOptions;
    use crate::perturb::PerturbOptions;
    use em_data::{EntityPair, Record};
    use em_embed::{EmbeddingOptions, WordEmbeddings};
    use std::sync::Arc;

    /// Matches on shared brand token only — brand should dominate globally.
    struct BrandMatcher;
    impl Matcher for BrandMatcher {
        fn name(&self) -> &str {
            "brand"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            let l = em_text::tokenize(pair.left().value(1));
            let r = em_text::tokenize(pair.right().value(1));
            if !l.is_empty() && l == r {
                0.9
            } else {
                0.1
            }
        }
    }

    fn dataset() -> Dataset {
        let schema = Arc::new(Schema::new(vec!["title", "brand"]));
        let mk = |id, t: &str, b: &str| Record::new(id, vec![t.to_string(), b.to_string()]);
        let mut examples = Vec::new();
        let data = [
            ("red chair", "acme", "crimson chair", "acme", true),
            ("blue table", "bolt", "navy table", "bolt", true),
            ("green lamp", "core", "lime lamp", "dex", false),
            ("white desk", "acme", "ivory desk", "bolt", false),
        ];
        for (i, (lt, lb, rt, rb, label)) in data.iter().enumerate() {
            let pair = EntityPair::new(
                Arc::clone(&schema),
                mk(i as u64 * 2, lt, lb),
                mk(i as u64 * 2 + 1, rt, rb),
            )
            .unwrap();
            examples.push(em_data::LabeledPair {
                pair,
                label: em_data::Label::from_bool(*label),
            });
        }
        Dataset::new("toy", schema, examples).unwrap()
    }

    fn crew() -> Crew {
        let corpus: Vec<Vec<String>> = [
            "red chair acme",
            "blue table bolt",
            "green lamp core",
            "white desk acme",
        ]
        .iter()
        .map(|s| em_text::tokenize(s))
        .collect();
        let emb = WordEmbeddings::train(
            corpus.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 8,
                ..Default::default()
            },
        )
        .unwrap();
        Crew::new(
            Arc::new(emb),
            CrewOptions {
                perturb: PerturbOptions {
                    samples: 128,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn global_explanation_identifies_the_driving_attribute() {
        let d = dataset();
        let g = explain_dataset(&crew(), &BrandMatcher, &d, 10, 2).unwrap();
        assert_eq!(g.pairs_explained, 4);
        // Brand carries the decision; it must rank first by mass.
        assert_eq!(g.attributes[0].attribute, "brand");
        assert!(g.attributes[0].mean_abs_mass > g.attributes[1].mean_abs_mass);
    }

    #[test]
    fn recurring_words_include_brand_tokens() {
        let d = dataset();
        let g = explain_dataset(&crew(), &BrandMatcher, &d, 10, 3).unwrap();
        let brand_words: Vec<&RecurringWord> = g
            .recurring_words
            .iter()
            .filter(|w| w.attribute == "brand")
            .collect();
        assert!(
            !brand_words.is_empty(),
            "brand words should recur in top clusters"
        );
    }

    #[test]
    fn render_contains_counts() {
        let d = dataset();
        let g = explain_dataset(&crew(), &BrandMatcher, &d, 2, 1).unwrap();
        let text = g.render();
        assert!(text.contains("over 2 pairs"));
        assert!(text.contains("attribute importance"));
    }

    #[test]
    fn empty_input_is_an_error() {
        let d = dataset();
        assert!(aggregate_explanations(&[], d.schema(), 1).is_err());
    }

    #[test]
    fn aggregation_statistics_are_consistent() {
        let d = dataset();
        let c = crew();
        let explanations: Vec<ClusterExplanation> = d
            .examples()
            .iter()
            .map(|ex| c.explain_clusters(&BrandMatcher, &ex.pair).unwrap())
            .collect();
        let g = aggregate_explanations(&explanations, d.schema(), 1).unwrap();
        let expect_mean = em_linalg::stats::mean(
            &explanations
                .iter()
                .map(|e| e.selected_k as f64)
                .collect::<Vec<_>>(),
        );
        assert!((g.mean_clusters - expect_mean).abs() < 1e-12);
        // Top-cluster shares sum to at most 1.
        let share_sum: f64 = g.attributes.iter().map(|a| a.top_cluster_share).sum();
        assert!(share_sum <= 1.0 + 1e-9);
    }
}
