//! Explanation data types shared by CREW and every baseline explainer.
//!
//! The common currency is the word-level attribution ([`WordExplanation`]);
//! CREW additionally produces a [`ClusterExplanation`], whose units are
//! groups of words. Both expose a uniform [`ExplanationUnit`] view so the
//! fidelity/interpretability metrics can treat all explainers identically.

use em_data::{Schema, TokenizedPair, WordUnit};

/// Per-word attribution for one pair.
#[derive(Debug, Clone)]
pub struct WordExplanation {
    /// Name of the explainer that produced this.
    pub explainer: String,
    /// The word units of the pair (aligned with `weights`).
    pub words: Vec<WordUnit>,
    /// Signed importance of each word (positive pushes toward "match").
    pub weights: Vec<f64>,
    /// Model probability on the unperturbed pair.
    pub base_score: f64,
    /// Surrogate intercept (local model value with everything dropped).
    pub intercept: f64,
    /// Weighted R² of the local surrogate on its perturbation sample
    /// (NaN-free; explainers without a surrogate report 1.0).
    pub surrogate_r2: f64,
}

impl WordExplanation {
    /// Indices of words ranked by |weight| descending (ties by index).
    pub fn ranked_indices(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.weights.len()).collect();
        idx.sort_by(|&a, &b| {
            self.weights[b]
                .abs()
                .partial_cmp(&self.weights[a].abs())
                .unwrap()
                .then(a.cmp(&b))
        });
        idx
    }

    /// The top-k words by |weight|.
    pub fn top_words(&self, k: usize) -> Vec<(&WordUnit, f64)> {
        self.ranked_indices()
            .into_iter()
            .take(k)
            .map(|i| (&self.words[i], self.weights[i]))
            .collect()
    }

    /// Units view: one unit per word whose |weight| contributes to the top
    /// `mass_threshold` fraction of total absolute weight. This defines the
    /// "effective explanation size" of word-level explainers.
    pub fn units(&self, mass_threshold: f64) -> Vec<ExplanationUnit> {
        let total: f64 = self.weights.iter().map(|w| w.abs()).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let mut units = Vec::new();
        let mut cum = 0.0;
        for i in self.ranked_indices() {
            if cum >= mass_threshold * total {
                break;
            }
            let w = self.weights[i];
            if w.abs() <= f64::EPSILON {
                break;
            }
            cum += w.abs();
            units.push(ExplanationUnit {
                member_indices: vec![i],
                weight: w,
            });
        }
        units
    }

    /// Render a compact text table of the top-k attributions.
    pub fn render(&self, schema: &Schema, k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} explanation (base score {:.3}, surrogate R² {:.3})\n",
            self.explainer, self.base_score, self.surrogate_r2
        ));
        for (w, weight) in self.top_words(k) {
            out.push_str(&format!("  {:+.4}  {}\n", weight, w.label(schema)));
        }
        out
    }

    /// Approximate resident heap bytes of this explanation — the accounting
    /// unit of the byte-budgeted stores. An estimate, not an exact
    /// allocation count: it must only be monotone in the real footprint.
    pub fn approx_bytes(&self) -> usize {
        let words: usize = self
            .words
            .iter()
            .map(|w| w.text.len() + std::mem::size_of::<WordUnit>())
            .sum();
        words + self.weights.len() * 8 + self.explainer.len() + 64
    }
}

/// One cluster of a CREW explanation.
#[derive(Debug, Clone)]
pub struct WordCluster {
    /// Indices into the explanation's word list.
    pub member_indices: Vec<usize>,
    /// Group-level signed importance (from the group surrogate).
    pub weight: f64,
    /// Mean pairwise semantic similarity of the member words in [0,1]
    /// (1 = perfectly coherent; singletons report 1).
    pub coherence: f64,
}

/// Cluster-of-words explanation — CREW's output.
#[derive(Debug, Clone)]
pub struct ClusterExplanation {
    /// The word-level explanation CREW computed internally (kept for
    /// fidelity comparisons and drill-down display).
    pub word_level: WordExplanation,
    /// The clusters, ranked by |weight| descending.
    pub clusters: Vec<WordCluster>,
    /// Number of clusters chosen by the model-selection step.
    pub selected_k: usize,
    /// Weighted R² of the group-level surrogate.
    pub group_r2: f64,
    /// Silhouette of the selected partition under the combined distance.
    pub silhouette: f64,
}

impl ClusterExplanation {
    /// Approximate resident heap bytes (see
    /// [`WordExplanation::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        let clusters: usize = self
            .clusters
            .iter()
            .map(|c| c.member_indices.len() * 8 + std::mem::size_of::<WordCluster>())
            .sum();
        self.word_level.approx_bytes() + clusters + 64
    }

    /// Units view (one unit per cluster).
    pub fn units(&self) -> Vec<ExplanationUnit> {
        self.clusters
            .iter()
            .map(|c| ExplanationUnit {
                member_indices: c.member_indices.clone(),
                weight: c.weight,
            })
            .collect()
    }

    /// Render the clusters as a text block.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "CREW explanation: {} clusters (group R² {:.3}, silhouette {:.3})\n",
            self.selected_k, self.group_r2, self.silhouette
        ));
        for (i, c) in self.clusters.iter().enumerate() {
            let labels: Vec<String> = c
                .member_indices
                .iter()
                .map(|&w| self.word_level.words[w].label(schema))
                .collect();
            out.push_str(&format!(
                "  #{:<2} {:+.4} (coherence {:.2}) {{{}}}\n",
                i + 1,
                c.weight,
                c.coherence,
                labels.join(", ")
            ));
        }
        out
    }
}

/// A unit of explanation: a set of words with one signed weight. Word-level
/// explainers produce singleton units; CREW produces cluster units.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplanationUnit {
    pub member_indices: Vec<usize>,
    pub weight: f64,
}

/// Convenience: build the `TokenizedPair`-aligned word list for an
/// explanation (all explainers must emit weights aligned with this order).
pub fn words_of(tokenized: &TokenizedPair) -> Vec<WordUnit> {
    tokenized.words().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{EntityPair, Record, Schema, Side};
    use std::sync::Arc;

    fn sample_explanation() -> (WordExplanation, Arc<Schema>) {
        let schema = Arc::new(Schema::new(vec!["title"]));
        let pair = EntityPair::new(
            Arc::clone(&schema),
            Record::new(0, vec!["alpha beta gamma".into()]),
            Record::new(1, vec!["alpha delta".into()]),
        )
        .unwrap();
        let tp = TokenizedPair::new(pair);
        let words = words_of(&tp);
        let weights = vec![0.5, -0.1, 0.0, 0.4, -0.3];
        (
            WordExplanation {
                explainer: "test".into(),
                words,
                weights,
                base_score: 0.8,
                intercept: 0.2,
                surrogate_r2: 0.95,
            },
            schema,
        )
    }

    #[test]
    fn ranking_orders_by_absolute_weight() {
        let (e, _) = sample_explanation();
        assert_eq!(e.ranked_indices(), vec![0, 3, 4, 1, 2]);
    }

    #[test]
    fn top_words_truncates() {
        let (e, _) = sample_explanation();
        let top = e.top_words(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 0.5);
        assert_eq!(top[1].1, 0.4);
        assert_eq!(top[0].0.text, "alpha");
        assert_eq!(top[0].0.side, Side::Left);
    }

    #[test]
    fn units_cover_requested_mass() {
        let (e, _) = sample_explanation();
        // |weights| = [.5,.1,0,.4,.3], total 1.3. 80% of mass = 1.04:
        // 0.5 + 0.4 = 0.9 < 1.04, + 0.3 = 1.2 >= 1.04 → 3 units.
        let units = e.units(0.8);
        assert_eq!(units.len(), 3);
        assert_eq!(units[0].member_indices, vec![0]);
        // Full mass keeps all non-zero words.
        assert_eq!(e.units(1.0).len(), 4);
    }

    #[test]
    fn units_of_zero_explanation_are_empty() {
        let (mut e, _) = sample_explanation();
        e.weights = vec![0.0; e.weights.len()];
        assert!(e.units(0.8).is_empty());
    }

    #[test]
    fn render_contains_labels_and_scores() {
        let (e, schema) = sample_explanation();
        let text = e.render(&schema, 3);
        assert!(text.contains("base score 0.800"));
        assert!(text.contains("L.title:alpha"));
        assert!(text.contains("+0.5000"));
    }

    #[test]
    fn cluster_explanation_units_and_render() {
        let (word_level, schema) = sample_explanation();
        let ce = ClusterExplanation {
            word_level,
            clusters: vec![
                WordCluster {
                    member_indices: vec![0, 3],
                    weight: 0.9,
                    coherence: 0.8,
                },
                WordCluster {
                    member_indices: vec![1, 4],
                    weight: -0.4,
                    coherence: 0.6,
                },
            ],
            selected_k: 2,
            group_r2: 0.92,
            silhouette: 0.4,
        };
        let units = ce.units();
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].member_indices, vec![0, 3]);
        let text = ce.render(&schema);
        assert!(text.contains("2 clusters"));
        assert!(text.contains("L.title:alpha"));
        assert!(text.contains("R.title:alpha"));
    }
}
