//! The explainer abstraction and the shared word-importance estimator.

use crate::explanation::{words_of, WordExplanation};
use crate::perturb::{perturb, PerturbOptions};
use crate::surrogate::{fit_word_surrogate, SurrogateOptions};
use em_data::{EntityPair, TokenizedPair};
use em_matchers::Matcher;

/// A post-hoc local explainer for EM models: given a matcher and one
/// candidate pair, produce per-word attributions.
pub trait Explainer: Send + Sync {
    /// Name used in reports ("crew", "lime", "landmark", …).
    fn name(&self) -> &str;

    /// Explain one pair. Implementations must emit weights aligned with
    /// `TokenizedPair::new(pair.clone()).words()` order.
    fn explain(
        &self,
        matcher: &dyn Matcher,
        pair: &EntityPair,
    ) -> Result<WordExplanation, crate::ExplainError>;
}

/// Estimate word importances with the shared perturb-and-fit procedure
/// (this is the "importance knowledge" source of CREW and also the body of
/// the plain LIME baseline).
pub fn estimate_word_importance(
    tokenized: &TokenizedPair,
    matcher: &dyn Matcher,
    perturb_opts: &PerturbOptions,
    surrogate_opts: &SurrogateOptions,
    explainer_name: &str,
) -> Result<WordExplanation, crate::ExplainError> {
    let set = perturb(tokenized, matcher, perturb_opts)?;
    let fit = fit_word_surrogate(&set, surrogate_opts)?;
    Ok(WordExplanation {
        explainer: explainer_name.to_string(),
        words: words_of(tokenized),
        weights: fit.weights,
        base_score: set.base_score(),
        intercept: fit.intercept,
        surrogate_r2: fit.r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{Record, Schema};
    use std::sync::Arc;

    /// Model that only cares whether the token "magic" appears on both
    /// sides — a planted ground-truth importance.
    struct MagicMatcher;
    impl Matcher for MagicMatcher {
        fn name(&self) -> &str {
            "magic"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            let l = em_text::tokenize(&pair.left().full_text());
            let r = em_text::tokenize(&pair.right().full_text());
            let both = l.iter().any(|t| t == "magic") && r.iter().any(|t| t == "magic");
            if both {
                0.9
            } else {
                0.1
            }
        }
    }

    #[test]
    fn importance_finds_the_planted_words() {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["magic alpha beta".into()]),
            Record::new(1, vec!["magic gamma delta".into()]),
        )
        .unwrap();
        let tp = TokenizedPair::new(pair);
        let expl = estimate_word_importance(
            &tp,
            &MagicMatcher,
            &PerturbOptions {
                samples: 400,
                ..Default::default()
            },
            &SurrogateOptions::default(),
            "test",
        )
        .unwrap();
        // The two "magic" words (indices 0 and 3) must rank first.
        let ranked = expl.ranked_indices();
        assert!(
            (ranked[0] == 0 && ranked[1] == 3) || (ranked[0] == 3 && ranked[1] == 0),
            "expected magic words first, got {ranked:?} with weights {:?}",
            expl.weights
        );
        assert!(expl.weights[0] > 0.1);
        assert!(expl.weights[3] > 0.1);
        // Filler words are near zero.
        for &i in &[1, 2, 4, 5] {
            assert!(expl.weights[i].abs() < expl.weights[0] / 2.0);
        }
        assert_eq!(expl.base_score, 0.9);
    }

    #[test]
    fn explanation_is_deterministic() {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["magic one two".into()]),
            Record::new(1, vec!["magic three".into()]),
        )
        .unwrap();
        let tp = TokenizedPair::new(pair);
        let opts = PerturbOptions {
            samples: 100,
            ..Default::default()
        };
        let a =
            estimate_word_importance(&tp, &MagicMatcher, &opts, &SurrogateOptions::default(), "t")
                .unwrap();
        let b =
            estimate_word_importance(&tp, &MagicMatcher, &opts, &SurrogateOptions::default(), "t")
                .unwrap();
        assert_eq!(a.weights, b.weights);
    }
}
