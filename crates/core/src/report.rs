//! Machine-readable explanation reports: a small hand-rolled JSON emitter
//! (the approved dependency set has no JSON crate) so explanations can be
//! exported to dashboards and notebooks.

use crate::explanation::{ClusterExplanation, WordExplanation};
use em_data::Schema;

/// Escape a string per JSON rules.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as JSON (finite guard: NaN/inf become null).
fn num(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip representation Rust provides.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serialise a word-level explanation to a JSON object string.
pub fn word_explanation_to_json(expl: &WordExplanation, schema: &Schema) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"explainer\":\"{}\",", escape(&expl.explainer)));
    out.push_str(&format!("\"base_score\":{},", num(expl.base_score)));
    out.push_str(&format!("\"surrogate_r2\":{},", num(expl.surrogate_r2)));
    out.push_str(&format!("\"intercept\":{},", num(expl.intercept)));
    out.push_str("\"words\":[");
    for (i, (w, &weight)) in expl.words.iter().zip(&expl.weights).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"text\":\"{}\",\"side\":\"{}\",\"attribute\":\"{}\",\"position\":{},\"weight\":{}}}",
            escape(&w.text),
            w.side.tag(),
            escape(schema.name(w.attribute)),
            w.position,
            num(weight)
        ));
    }
    out.push_str("]}");
    out
}

/// Serialise a cluster explanation to a JSON object string (includes the
/// word-level drill-down).
pub fn cluster_explanation_to_json(expl: &ClusterExplanation, schema: &Schema) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"selected_k\":{},", expl.selected_k));
    out.push_str(&format!("\"group_r2\":{},", num(expl.group_r2)));
    out.push_str(&format!("\"silhouette\":{},", num(expl.silhouette)));
    out.push_str("\"clusters\":[");
    for (i, c) in expl.clusters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"weight\":{},\"coherence\":{},\"words\":[",
            num(c.weight),
            num(c.coherence)
        ));
        for (j, &w) in c.member_indices.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let word = &expl.word_level.words[w];
            out.push_str(&format!(
                "{{\"text\":\"{}\",\"side\":\"{}\",\"attribute\":\"{}\"}}",
                escape(&word.text),
                word.side.tag(),
                escape(schema.name(word.attribute))
            ));
        }
        out.push_str("]}");
    }
    out.push_str("],");
    out.push_str(&format!(
        "\"word_level\":{}",
        word_explanation_to_json(&expl.word_level, schema)
    ));
    out.push('}');
    out
}

/// Minimal JSON validity check used by tests and debug assertions: verifies
/// balanced braces/brackets outside strings and legal escapes. Not a full
/// parser — just enough to catch emitter bugs.
pub fn looks_like_valid_json(s: &str) -> bool {
    let mut depth: Vec<char> = Vec::new();
    let mut chars = s.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => match chars.next() {
                    Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => {}
                    Some('u') => {
                        for _ in 0..4 {
                            match chars.next() {
                                Some(h) if h.is_ascii_hexdigit() => {}
                                _ => return false,
                            }
                        }
                    }
                    _ => return false,
                },
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth.push('}'),
            '[' => depth.push(']'),
            '}' | ']' if depth.pop() != Some(c) => {
                return false;
            }
            _ => {}
        }
    }
    depth.is_empty() && !in_string
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explanation::WordCluster;
    use em_data::{EntityPair, Record, TokenizedPair};
    use std::sync::Arc;

    fn sample() -> (ClusterExplanation, Arc<Schema>) {
        let schema = Arc::new(Schema::new(vec!["title"]));
        let pair = EntityPair::new(
            Arc::clone(&schema),
            Record::new(0, vec!["alpha \"quoted\" beta".into()]),
            Record::new(1, vec!["gamma".into()]),
        )
        .unwrap();
        let tp = TokenizedPair::new(pair);
        let word_level = WordExplanation {
            explainer: "crew".into(),
            words: tp.words().to_vec(),
            weights: vec![0.5, -0.25, 0.1, 0.0],
            base_score: 0.8,
            intercept: 0.1,
            surrogate_r2: 0.9,
        };
        let ce = ClusterExplanation {
            word_level,
            clusters: vec![
                WordCluster {
                    member_indices: vec![0, 2],
                    weight: 0.6,
                    coherence: 0.7,
                },
                WordCluster {
                    member_indices: vec![1, 3],
                    weight: -0.2,
                    coherence: 0.5,
                },
            ],
            selected_k: 2,
            group_r2: 0.85,
            silhouette: 0.4,
        };
        (ce, schema)
    }

    #[test]
    fn word_json_is_structurally_valid() {
        let (ce, schema) = sample();
        let json = word_explanation_to_json(&ce.word_level, &schema);
        assert!(looks_like_valid_json(&json), "{json}");
        assert!(json.contains("\"explainer\":\"crew\""));
        assert!(json.contains("\"text\":\"alpha\""));
        assert!(json.contains("\"weight\":0.5"));
    }

    #[test]
    fn cluster_json_is_structurally_valid() {
        let (ce, schema) = sample();
        let json = cluster_explanation_to_json(&ce, &schema);
        assert!(looks_like_valid_json(&json), "{json}");
        assert!(json.contains("\"selected_k\":2"));
        assert!(json.contains("\"clusters\":["));
        assert!(json.contains("\"word_level\":{"));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("line\nbreak"), "line\\nbreak");
        assert_eq!(escape("bell\u{7}"), "bell\\u0007");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn validity_checker_rejects_garbage() {
        assert!(looks_like_valid_json("{\"a\":[1,2,{}]}"));
        assert!(!looks_like_valid_json("{\"a\":["));
        assert!(!looks_like_valid_json("{]}"));
        assert!(!looks_like_valid_json("{\"unterminated"));
        assert!(!looks_like_valid_json("\"bad \\x escape\""));
    }
}
