//! Local surrogate fitting: the LIME-style weighted ridge regression that
//! converts a perturbation sample into word-level (or cluster-level)
//! attributions.

use crate::perturb::PerturbationSet;
use em_linalg::{ridge_regression, Matrix};

/// Kernel and regularisation settings of the surrogate.
#[derive(Debug, Clone, Copy)]
pub struct SurrogateOptions {
    /// Exponential kernel width on mask distance (fraction of words
    /// dropped); LIME's default shape `exp(-d²/w²)`.
    pub kernel_width: f64,
    /// Ridge penalty.
    pub lambda: f64,
}

impl Default for SurrogateOptions {
    fn default() -> Self {
        SurrogateOptions {
            kernel_width: 0.75,
            lambda: 1e-3,
        }
    }
}

/// Result of a surrogate fit.
#[derive(Debug, Clone)]
pub struct SurrogateFit {
    /// One signed weight per feature (word or cluster).
    pub weights: Vec<f64>,
    /// Intercept of the local linear model.
    pub intercept: f64,
    /// Weighted R² on the perturbation sample.
    pub r_squared: f64,
}

/// Proximity weight of a sample given the fraction of words it kept.
pub fn kernel_weight(kept_fraction: f64, width: f64) -> f64 {
    let dropped = 1.0 - kept_fraction;
    (-(dropped * dropped) / (width * width)).exp()
}

/// Fit a word-level surrogate: design matrix = binary keep indicators.
pub fn fit_word_surrogate(
    set: &PerturbationSet,
    opts: &SurrogateOptions,
) -> Result<SurrogateFit, crate::ExplainError> {
    let n_words = set.masks.first().map_or(0, |m| m.len());
    if n_words == 0 || set.is_empty() {
        return Err(crate::ExplainError::EmptyPair);
    }
    let x = Matrix::from_fn(
        set.len(),
        n_words,
        |i, j| if set.masks[i][j] { 1.0 } else { 0.0 },
    );
    fit(set, x, opts)
}

/// Fit a group-level surrogate: one feature per group, valued as the
/// fraction of the group's words kept in the sample. Groups are lists of
/// word indices; they need not cover all words (uncovered words are simply
/// not part of any feature).
pub fn fit_group_surrogate(
    set: &PerturbationSet,
    groups: &[Vec<usize>],
    opts: &SurrogateOptions,
) -> Result<SurrogateFit, crate::ExplainError> {
    if groups.is_empty() {
        return Err(crate::ExplainError::NoGroups);
    }
    let n_words = set.masks.first().map_or(0, |m| m.len());
    for g in groups {
        if g.is_empty() {
            return Err(crate::ExplainError::NoGroups);
        }
        if g.iter().any(|&i| i >= n_words) {
            return Err(crate::ExplainError::GroupIndexOutOfRange);
        }
    }
    let x = Matrix::from_fn(set.len(), groups.len(), |i, j| {
        let g = &groups[j];
        let kept = g.iter().filter(|&&w| set.masks[i][w]).count();
        kept as f64 / g.len() as f64
    });
    fit(set, x, opts)
}

fn fit(
    set: &PerturbationSet,
    x: Matrix,
    opts: &SurrogateOptions,
) -> Result<SurrogateFit, crate::ExplainError> {
    if opts.kernel_width <= 0.0 {
        return Err(crate::ExplainError::InvalidKernelWidth(opts.kernel_width));
    }
    let weights: Vec<f64> = set
        .kept_fraction
        .iter()
        .map(|&f| kernel_weight(f, opts.kernel_width))
        .collect();
    let fit = ridge_regression(&x, &set.responses, &weights, opts.lambda)
        .map_err(crate::ExplainError::Linalg)?;
    Ok(SurrogateFit {
        weights: fit.coefficients,
        intercept: fit.intercept,
        r_squared: fit.r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_rngs::rngs::StdRng;
    use em_rngs::{Rng, SeedableRng};

    /// Build a synthetic perturbation set where the response is a known
    /// linear function of the mask.
    fn linear_set(
        n_words: usize,
        true_weights: &[f64],
        samples: usize,
        seed: u64,
    ) -> PerturbationSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut masks = vec![vec![true; n_words]];
        for _ in 0..samples {
            let mut m: Vec<bool> = (0..n_words).map(|_| rng.gen_bool(0.5)).collect();
            if m.iter().all(|&b| !b) {
                m[0] = true;
            }
            masks.push(m);
        }
        let responses: Vec<f64> = masks
            .iter()
            .map(|m| {
                0.1 + m
                    .iter()
                    .zip(true_weights)
                    .map(|(&b, &w)| if b { w } else { 0.0 })
                    .sum::<f64>()
            })
            .collect();
        let kept_fraction = masks
            .iter()
            .map(|m| m.iter().filter(|&&b| b).count() as f64 / n_words as f64)
            .collect();
        PerturbationSet {
            masks,
            responses,
            kept_fraction,
        }
    }

    #[test]
    fn word_surrogate_recovers_linear_model() {
        let truth = [0.4, -0.2, 0.0, 0.3];
        let set = linear_set(4, &truth, 300, 1);
        let fit = fit_word_surrogate(&set, &SurrogateOptions::default()).unwrap();
        for (w, t) in fit.weights.iter().zip(&truth) {
            assert!((w - t).abs() < 0.02, "weight {w} vs truth {t}");
        }
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn kernel_weight_decays_with_drops() {
        let full = kernel_weight(1.0, 0.75);
        let half = kernel_weight(0.5, 0.75);
        let none = kernel_weight(0.0, 0.75);
        assert_eq!(full, 1.0);
        assert!(half < full && half > none);
    }

    #[test]
    fn group_surrogate_attributes_weight_to_groups() {
        // Words 0,1 carry +0.3 each; words 2,3 carry -0.2 each.
        let truth = [0.3, 0.3, -0.2, -0.2];
        let set = linear_set(4, &truth, 400, 2);
        let groups = vec![vec![0, 1], vec![2, 3]];
        let fit = fit_group_surrogate(&set, &groups, &SurrogateOptions::default()).unwrap();
        // Group feature is kept-fraction, so weight ≈ sum of member effects.
        assert!((fit.weights[0] - 0.6).abs() < 0.05, "g0 {}", fit.weights[0]);
        assert!((fit.weights[1] + 0.4).abs() < 0.05, "g1 {}", fit.weights[1]);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn grouping_correlated_words_keeps_fidelity() {
        // A response that only depends on the *pair* of words being present
        // together is better explained by a group feature.
        let mut rng = StdRng::seed_from_u64(3);
        let n_words = 4;
        let mut masks = vec![vec![true; n_words]];
        for _ in 0..300 {
            let m: Vec<bool> = (0..n_words).map(|_| rng.gen_bool(0.5)).collect();
            masks.push(m);
        }
        let responses: Vec<f64> = masks
            .iter()
            .map(|m| if m[0] && m[1] { 0.9 } else { 0.2 })
            .collect();
        let kept_fraction = masks
            .iter()
            .map(|m| m.iter().filter(|&&b| b).count() as f64 / n_words as f64)
            .collect();
        let set = PerturbationSet {
            masks,
            responses,
            kept_fraction,
        };
        let word = fit_word_surrogate(&set, &SurrogateOptions::default()).unwrap();
        let group = fit_group_surrogate(
            &set,
            &[vec![0, 1], vec![2, 3]],
            &SurrogateOptions::default(),
        )
        .unwrap();
        // The group surrogate with 2 features should be close to the word
        // surrogate with 4 features in fit quality.
        assert!(group.r_squared > word.r_squared - 0.1);
        assert!(group.weights[0] > 0.3);
        assert!(group.weights[1].abs() < 0.1);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let set = linear_set(3, &[0.1, 0.1, 0.1], 20, 4);
        assert!(matches!(
            fit_group_surrogate(&set, &[], &SurrogateOptions::default()),
            Err(crate::ExplainError::NoGroups)
        ));
        assert!(matches!(
            fit_group_surrogate(&set, &[vec![]], &SurrogateOptions::default()),
            Err(crate::ExplainError::NoGroups)
        ));
        assert!(matches!(
            fit_group_surrogate(&set, &[vec![99]], &SurrogateOptions::default()),
            Err(crate::ExplainError::GroupIndexOutOfRange)
        ));
        assert!(matches!(
            fit_word_surrogate(
                &set,
                &SurrogateOptions {
                    kernel_width: 0.0,
                    ..Default::default()
                }
            ),
            Err(crate::ExplainError::InvalidKernelWidth(_))
        ));
    }

    #[test]
    fn constant_response_gives_zeroish_weights() {
        let set = {
            let mut s = linear_set(3, &[0.0, 0.0, 0.0], 50, 5);
            s.responses.iter_mut().for_each(|r| *r = 0.7);
            s
        };
        let fit = fit_word_surrogate(&set, &SurrogateOptions::default()).unwrap();
        for w in &fit.weights {
            assert!(w.abs() < 1e-6);
        }
        assert!((fit.intercept - 0.7).abs() < 1e-6);
    }
}
