//! CREW's three knowledge sources, each materialised as a word-pair
//! distance matrix over the words of one candidate pair:
//!
//! 1. **semantic** — embedding cosine distance between word texts;
//! 2. **attribute** — the arrangement of words into (aligned) schema
//!    attributes: words in the same attribute (either record) are near;
//! 3. **importance** — distance between rank-normalised attribution
//!    weights, so words contributing equally to the decision cluster
//!    together.
//!
//! The combined CREW distance is their convex combination.

use em_data::{TokenizedPair, WordUnit};
use em_embed::{SemanticMatrixOptions, WordEmbeddings};
use em_linalg::Matrix;

/// Mixing weights of the combined distance (normalised at use time).
#[derive(Debug, Clone, Copy)]
pub struct KnowledgeWeights {
    pub semantic: f64,
    pub attribute: f64,
    pub importance: f64,
}

impl Default for KnowledgeWeights {
    fn default() -> Self {
        KnowledgeWeights {
            semantic: 1.0,
            attribute: 1.0,
            importance: 1.0,
        }
    }
}

impl KnowledgeWeights {
    /// Use only a subset of sources (ablation variants).
    pub fn only_semantic() -> Self {
        KnowledgeWeights {
            semantic: 1.0,
            attribute: 0.0,
            importance: 0.0,
        }
    }
    pub fn only_attribute() -> Self {
        KnowledgeWeights {
            semantic: 0.0,
            attribute: 1.0,
            importance: 0.0,
        }
    }
    pub fn only_importance() -> Self {
        KnowledgeWeights {
            semantic: 0.0,
            attribute: 0.0,
            importance: 1.0,
        }
    }

    fn normalised(self) -> Result<(f64, f64, f64), crate::ExplainError> {
        let (a, b, c) = (self.semantic, self.attribute, self.importance);
        if a < 0.0 || b < 0.0 || c < 0.0 || !(a + b + c).is_finite() {
            return Err(crate::ExplainError::InvalidWeights);
        }
        let sum = a + b + c;
        if sum <= 0.0 {
            return Err(crate::ExplainError::InvalidWeights);
        }
        Ok((a / sum, b / sum, c / sum))
    }
}

/// Semantic distance matrix over the pair's words (embedding cosine).
pub fn semantic_distances(tokenized: &TokenizedPair, embeddings: &WordEmbeddings) -> Matrix {
    semantic_distances_with(tokenized, embeddings, &SemanticMatrixOptions::exact())
}

/// [`semantic_distances`] with an explicit backend choice: exact all
/// pairs, the LSH-index neighbour-limited variant, or the distinct-word
/// auto switch (see [`em_embed::SemanticBackend`]).
pub fn semantic_distances_with(
    tokenized: &TokenizedPair,
    embeddings: &WordEmbeddings,
    semantic: &SemanticMatrixOptions,
) -> Matrix {
    let words: Vec<&str> = tokenized.words().iter().map(|w| w.text.as_str()).collect();
    em_embed::semantic_distance_matrix_with(embeddings, &words, semantic)
}

/// Attribute-arrangement distance: 0 for words in the same (aligned)
/// attribute — regardless of which record they come from — 1 otherwise.
/// This encodes the EM-specific schema knowledge: `L.title` words and
/// `R.title` words belong to the same semantic field.
pub fn attribute_distances(tokenized: &TokenizedPair) -> Matrix {
    let words = tokenized.words();
    let n = words.len();
    Matrix::from_fn(n, n, |i, j| {
        if words[i].attribute == words[j].attribute {
            0.0
        } else {
            1.0
        }
    })
}

/// Importance distance: absolute difference of rank-normalised weights.
/// Rank normalisation (fractional ranks mapped to [0,1]) makes the distance
/// robust to the attribution scale of the underlying surrogate.
pub fn importance_distances(weights: &[f64]) -> Matrix {
    let n = weights.len();
    if n == 0 {
        return Matrix::zeros(0, 0);
    }
    let normalised = rank_normalised(weights);
    Matrix::from_fn(n, n, |i, j| (normalised[i] - normalised[j]).abs())
}

/// Fractional ranks mapped to [0,1] (the shared normalisation of
/// [`importance_distances`] and the fused [`combined_distances`] pass).
fn rank_normalised(weights: &[f64]) -> Vec<f64> {
    let n = weights.len();
    if n == 1 {
        return vec![0.5];
    }
    let ranks = em_linalg::stats::ranks(weights);
    ranks.iter().map(|r| (r - 1.0) / (n as f64 - 1.0)).collect()
}

/// The combined CREW distance.
///
/// # Errors
/// Rejects negative/zero-sum mixing weights and length mismatches.
pub fn combined_distances(
    tokenized: &TokenizedPair,
    embeddings: &WordEmbeddings,
    word_weights: &[f64],
    mix: KnowledgeWeights,
) -> Result<Matrix, crate::ExplainError> {
    combined_distances_with(
        tokenized,
        embeddings,
        word_weights,
        mix,
        &SemanticMatrixOptions::exact(),
    )
}

/// [`combined_distances`] with an explicit semantic-backend choice.
pub fn combined_distances_with(
    tokenized: &TokenizedPair,
    embeddings: &WordEmbeddings,
    word_weights: &[f64],
    mix: KnowledgeWeights,
    semantic: &SemanticMatrixOptions,
) -> Result<Matrix, crate::ExplainError> {
    let n = tokenized.len();
    if word_weights.len() != n {
        return Err(crate::ExplainError::WeightLengthMismatch {
            expected: n,
            got: word_weights.len(),
        });
    }
    let (ws, wa, wi) = mix.normalised()?;
    // Single fused pass over the n×n cells. Per cell this accumulates
    // `0 + ws·sem + wa·attr + wi·imp` with only the active sources, in
    // the same source order the previous `axpy` sequence applied — so
    // the result is bitwise-unchanged, without materialising the
    // attribute/importance matrices or re-walking the output per source.
    let sem = if ws > 0.0 {
        Some(semantic_distances_with(tokenized, embeddings, semantic))
    } else {
        None
    };
    let imp = if wi > 0.0 {
        Some(rank_normalised(word_weights))
    } else {
        None
    };
    let words = tokenized.words();
    Ok(Matrix::from_fn(n, n, |i, j| {
        let mut c = 0.0;
        if let Some(sem) = &sem {
            c += ws * sem[(i, j)];
        }
        if wa > 0.0 {
            let same = words[i].attribute == words[j].attribute;
            c += wa * if same { 0.0 } else { 1.0 };
        }
        if let Some(imp) = &imp {
            c += wi * (imp[i] - imp[j]).abs();
        }
        c
    }))
}

/// Cannot-link constraints CREW derives from the importance knowledge: a
/// strongly match-supporting word must not share a cluster with a strongly
/// match-opposing word. `quantile` (e.g. 0.25) selects how many extreme
/// words on each side are constrained.
pub fn opposite_sign_cannot_links(weights: &[f64], quantile: f64) -> Vec<(usize, usize)> {
    let n = weights.len();
    if n < 2 {
        return Vec::new();
    }
    let k = ((n as f64 * quantile).ceil() as usize).max(1);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).unwrap());
    let top: Vec<usize> = order
        .iter()
        .take(k)
        .copied()
        .filter(|&i| weights[i] > 0.0)
        .collect();
    let bottom: Vec<usize> = order
        .iter()
        .rev()
        .take(k)
        .copied()
        .filter(|&i| weights[i] < 0.0)
        .collect();
    let mut links = Vec::with_capacity(top.len() * bottom.len());
    for &a in &top {
        for &b in &bottom {
            links.push((a, b));
        }
    }
    links
}

/// Mean pairwise embedding similarity of a set of words (coherence of a
/// cluster); singletons and empty sets report 1.0.
pub fn semantic_coherence(
    words: &[WordUnit],
    member_indices: &[usize],
    embeddings: &WordEmbeddings,
) -> f64 {
    if member_indices.len() < 2 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut count = 0usize;
    for (a_pos, &a) in member_indices.iter().enumerate() {
        for &b in &member_indices[a_pos + 1..] {
            sum += embeddings
                .similarity(&words[a].text, &words[b].text)
                .max(0.0);
            count += 1;
        }
    }
    sum / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{EntityPair, Record, Schema};
    use em_embed::EmbeddingOptions;
    use std::sync::Arc;

    fn tokenized() -> TokenizedPair {
        let schema = Arc::new(Schema::new(vec!["title", "brand"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["sonix tv black".into(), "sonix".into()]),
            Record::new(1, vec!["sonix television".into(), "sonix".into()]),
        )
        .unwrap();
        TokenizedPair::new(pair)
    }

    fn embeddings() -> WordEmbeddings {
        let corpus: Vec<Vec<String>> = [
            "sonix tv black",
            "sonix television black",
            "veltron tv white",
            "veltron television white",
        ]
        .iter()
        .map(|s| em_text::tokenize(s))
        .collect();
        WordEmbeddings::train(
            corpus.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 12,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn attribute_distance_is_binary_on_attribute_identity() {
        let tp = tokenized();
        let d = attribute_distances(&tp);
        let words = tp.words();
        for i in 0..words.len() {
            for j in 0..words.len() {
                let expect = if words[i].attribute == words[j].attribute {
                    0.0
                } else {
                    1.0
                };
                assert_eq!(d[(i, j)], expect);
            }
        }
        // Cross-record same-attribute words are near: L.title[0] and R.title[0].
        assert_eq!(d[(0, 5)], 0.0);
    }

    #[test]
    fn importance_distance_ranks_scale_free() {
        let d1 = importance_distances(&[0.1, 0.2, 0.3]);
        let d2 = importance_distances(&[1.0, 2.0, 3.0]); // same ranks
        for i in 0..3 {
            for j in 0..3 {
                assert!((d1[(i, j)] - d2[(i, j)]).abs() < 1e-12);
            }
        }
        assert_eq!(d1[(0, 2)], 1.0); // extremes are maximally distant
        assert_eq!(d1[(0, 0)], 0.0);
    }

    #[test]
    fn importance_distance_edge_sizes() {
        assert_eq!(importance_distances(&[]).rows(), 0);
        let d = importance_distances(&[0.5]);
        assert_eq!(d[(0, 0)], 0.0);
    }

    #[test]
    fn combined_is_convex_combination() {
        let tp = tokenized();
        let emb = embeddings();
        let w = vec![0.1; tp.len()];
        let c = combined_distances(&tp, &emb, &w, KnowledgeWeights::default()).unwrap();
        // All entries bounded by 1 (each source is bounded by 1).
        for i in 0..tp.len() {
            assert_eq!(c[(i, i)], 0.0);
            for j in 0..tp.len() {
                assert!((0.0..=1.0 + 1e-9).contains(&c[(i, j)]));
                assert!((c[(i, j)] - c[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ablation_weights_select_single_sources() {
        let tp = tokenized();
        let emb = embeddings();
        let w: Vec<f64> = (0..tp.len()).map(|i| i as f64).collect();
        let only_attr =
            combined_distances(&tp, &emb, &w, KnowledgeWeights::only_attribute()).unwrap();
        let direct = attribute_distances(&tp);
        for i in 0..tp.len() {
            for j in 0..tp.len() {
                assert_eq!(only_attr[(i, j)], direct[(i, j)]);
            }
        }
        let only_imp =
            combined_distances(&tp, &emb, &w, KnowledgeWeights::only_importance()).unwrap();
        let direct_imp = importance_distances(&w);
        for i in 0..tp.len() {
            for j in 0..tp.len() {
                assert!((only_imp[(i, j)] - direct_imp[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn invalid_mixes_are_rejected() {
        let tp = tokenized();
        let emb = embeddings();
        let w = vec![0.0; tp.len()];
        let zero = KnowledgeWeights {
            semantic: 0.0,
            attribute: 0.0,
            importance: 0.0,
        };
        assert!(combined_distances(&tp, &emb, &w, zero).is_err());
        let neg = KnowledgeWeights {
            semantic: -1.0,
            attribute: 1.0,
            importance: 1.0,
        };
        assert!(combined_distances(&tp, &emb, &w, neg).is_err());
        // Length mismatch.
        assert!(combined_distances(&tp, &emb, &[0.0], KnowledgeWeights::default()).is_err());
    }

    #[test]
    fn cannot_links_pair_extremes_of_opposite_sign() {
        let weights = [0.9, 0.5, 0.0, -0.4, -0.8];
        let links = opposite_sign_cannot_links(&weights, 0.25);
        // k = ceil(5*0.25) = 2 per side; top = {0,1}, bottom = {4,3}.
        assert!(links.contains(&(0, 4)));
        assert_eq!(links.len(), 4);
        // All-positive weights produce no links.
        assert!(opposite_sign_cannot_links(&[0.1, 0.2, 0.3], 0.5).is_empty());
        assert!(opposite_sign_cannot_links(&[0.1], 0.5).is_empty());
    }

    #[test]
    fn coherence_of_identical_words_is_one() {
        let tp = tokenized();
        let emb = embeddings();
        let words = tp.words();
        // words[0] = "sonix" (L.title), words[4] = "sonix" (R.title)
        assert_eq!(words[0].text, "sonix");
        assert_eq!(words[4].text, "sonix");
        let c = semantic_coherence(words, &[0, 4], &emb);
        assert!((c - 1.0).abs() < 1e-9);
        assert_eq!(semantic_coherence(words, &[0], &emb), 1.0);
        assert_eq!(semantic_coherence(words, &[], &emb), 1.0);
    }

    #[test]
    fn coherence_ranks_related_above_unrelated() {
        let tp = tokenized();
        let emb = embeddings();
        let words = tp.words();
        // "tv"(1) and "television"(5) share contexts; "black"(2) and
        // "sonix"(0) less so.
        assert_eq!(words[5].text, "television");
        let related = semantic_coherence(words, &[1, 5], &emb);
        let unrelated = semantic_coherence(words, &[0, 2], &emb);
        assert!(
            related >= unrelated,
            "related {related} unrelated {unrelated}"
        );
    }
}
