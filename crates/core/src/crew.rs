//! The CREW explainer: cluster-of-words explanations combining semantic,
//! attribute-arrangement and importance knowledge.
//!
//! Pipeline (reconstruction of the paper's approach from its abstract — see
//! DESIGN.md):
//!
//! 1. perturb the pair and fit a word-level surrogate → importances φ;
//! 2. build the combined word distance `α·d_sem + β·d_attr + γ·d_imp`;
//! 3. constrained average-linkage agglomerative clustering (opposite-sign
//!    extreme words cannot link);
//! 4. cut the dendrogram at every K, refit a *group-level* surrogate on the
//!    same perturbation sample, and pick the smallest K whose group R²
//!    retains `tau` of the best achievable group fidelity (the knee of the
//!    fidelity-vs-size curve);
//! 5. emit clusters with group-surrogate weights and semantic coherence.

use crate::explainer::Explainer;
use crate::explanation::{words_of, ClusterExplanation, WordCluster, WordExplanation};
use crate::knowledge::{
    combined_distances_with, opposite_sign_cannot_links, semantic_coherence, KnowledgeWeights,
};
use crate::perturb::{perturb, PerturbOptions, PerturbationSet};
use crate::surrogate::{fit_group_surrogate, fit_word_surrogate, SurrogateOptions};
use em_cluster::{agglomerative, silhouette, sweep_cuts, Constraints, Linkage};
use em_data::{EntityPair, TokenizedPair};
use em_embed::WordEmbeddings;
use em_matchers::Matcher;
use std::sync::Arc;

/// Which flat-clustering driver produces the candidate partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAlgorithm {
    /// Constrained agglomerative clustering (the CREW default): one
    /// dendrogram cut at every K, cannot-link constraints supported.
    Agglomerative,
    /// k-medoids per K — the flat-clustering ablation. Cannot-link
    /// constraints are not supported and are ignored on this path.
    KMedoids,
}

/// CREW configuration.
#[derive(Debug, Clone)]
pub struct CrewOptions {
    /// Perturbation sampling options (budget, strategy, seed, threads).
    pub perturb: PerturbOptions,
    /// Surrogate kernel/regularisation.
    pub surrogate: SurrogateOptions,
    /// Mixing weights of the three knowledge sources.
    pub knowledge: KnowledgeWeights,
    /// Clustering driver (agglomerative by default; k-medoids ablation).
    pub algorithm: ClusterAlgorithm,
    /// Linkage criterion of the agglomerative step.
    pub linkage: Linkage,
    /// Largest K considered during model selection.
    pub max_clusters: usize,
    /// Fidelity retention target: selected K is the smallest whose group
    /// R² reaches `tau` × the best group R² over the whole K range.
    pub tau: f64,
    /// Quantile of extreme-importance words receiving cannot-link
    /// constraints (0 disables constraints).
    pub cannot_link_quantile: f64,
    /// Semantic distance backend: exact all-pairs (the default, pinned
    /// bitwise to the original behaviour), the LSH ANN index, or the
    /// distinct-word-count auto switch.
    pub semantic: em_embed::SemanticMatrixOptions,
}

impl Default for CrewOptions {
    fn default() -> Self {
        CrewOptions {
            perturb: PerturbOptions::default(),
            surrogate: SurrogateOptions::default(),
            knowledge: KnowledgeWeights::default(),
            algorithm: ClusterAlgorithm::Agglomerative,
            linkage: Linkage::Average,
            max_clusters: 10,
            tau: 0.9,
            cannot_link_quantile: 0.15,
            // Auto is bitwise-identical to exact below the distinct-word
            // threshold, which per-pair word lists never approach.
            semantic: em_embed::SemanticMatrixOptions::default(),
        }
    }
}

/// The CREW explainer. Holds the word embeddings used for the semantic
/// knowledge source (typically trained once per dataset).
pub struct Crew {
    embeddings: Arc<WordEmbeddings>,
    options: CrewOptions,
}

impl Crew {
    pub fn new(embeddings: Arc<WordEmbeddings>, options: CrewOptions) -> Self {
        Crew {
            embeddings,
            options,
        }
    }

    /// Convenience constructor with default options.
    pub fn with_defaults(embeddings: Arc<WordEmbeddings>) -> Self {
        Crew::new(embeddings, CrewOptions::default())
    }

    pub fn options(&self) -> &CrewOptions {
        &self.options
    }

    /// Produce `(k, labels, silhouette)` candidate partitions for every K in
    /// the model selection range, using the configured clustering driver.
    ///
    /// On the agglomerative path consecutive cuts come from one incremental
    /// merge replay ([`sweep_cuts`]) that also scores each cut's silhouette
    /// from shared accumulators, instead of re-running union-find and an
    /// O(n²·k) silhouette per K.
    fn candidate_partitions(
        &self,
        distances: &em_linalg::Matrix,
        word_weights: &[f64],
        n: usize,
    ) -> Result<Vec<(usize, Vec<usize>, f64)>, crate::ExplainError> {
        match self.options.algorithm {
            ClusterAlgorithm::Agglomerative => {
                let constraints = if self.options.cannot_link_quantile > 0.0 {
                    Constraints {
                        must_link: Vec::new(),
                        cannot_link: opposite_sign_cannot_links(
                            word_weights,
                            self.options.cannot_link_quantile,
                        ),
                    }
                } else {
                    Constraints::none()
                };
                let dendrogram = agglomerative(distances, self.options.linkage, &constraints)
                    .map_err(crate::ExplainError::Cluster)?;
                let k_lo = dendrogram.min_clusters().max(1);
                let k_hi = self
                    .options
                    .max_clusters
                    .min(dendrogram.max_clusters())
                    .max(k_lo);
                let cuts = sweep_cuts(&dendrogram, distances, k_lo, k_hi)
                    .map_err(crate::ExplainError::Cluster)?;
                Ok(cuts
                    .into_iter()
                    .map(|cut| (cut.k, cut.labels, cut.silhouette))
                    .collect())
            }
            ClusterAlgorithm::KMedoids => {
                let k_hi = self.options.max_clusters.min(n).max(1);
                (1..=k_hi)
                    .map(|k| {
                        let r = em_cluster::kmedoids(
                            distances,
                            k,
                            self.options.perturb.seed ^ k as u64,
                            40,
                        )
                        .map_err(crate::ExplainError::Cluster)?;
                        let sil = silhouette(distances, &r.labels)
                            .map_err(crate::ExplainError::Cluster)?;
                        Ok((k, r.labels, sil))
                    })
                    .collect()
            }
        }
    }

    /// Produce the full cluster-of-words explanation for one pair.
    pub fn explain_clusters(
        &self,
        matcher: &dyn Matcher,
        pair: &EntityPair,
    ) -> Result<ClusterExplanation, crate::ExplainError> {
        let tokenized = TokenizedPair::new(pair.clone());
        if tokenized.len() == 0 {
            return Err(crate::ExplainError::EmptyPair);
        }
        if self.options.tau <= 0.0 || self.options.tau > 1.0 {
            return Err(crate::ExplainError::InvalidTau(self.options.tau));
        }

        // 1. Importance knowledge: one perturbation sample reused by both
        //    the word-level and every group-level surrogate.
        let set = {
            let _span = em_obs::span!("crew/perturb");
            perturb(&tokenized, matcher, &self.options.perturb)?
        };
        self.explain_clusters_with_set(&tokenized, &set)
    }

    /// Build the perturbation sample behind an explanation of `tokenized` —
    /// the only stage of the pipeline that queries the matcher. Explaining
    /// from a precomputed set via [`Crew::explain_clusters_with_set`] is
    /// bitwise-identical to [`Crew::explain_clusters`], which lets callers
    /// (the evaluation substrate, option ablations) pay the model queries
    /// once and reuse them across clustering variants.
    pub fn perturbation_set(
        &self,
        matcher: &dyn Matcher,
        tokenized: &TokenizedPair,
    ) -> Result<PerturbationSet, crate::ExplainError> {
        let _span = em_obs::span!("crew/perturb");
        perturb(tokenized, matcher, &self.options.perturb)
    }

    /// The matcher-query-free tail of [`Crew::explain_clusters`]: surrogate
    /// fits, knowledge distances, clustering and model selection, all from
    /// an existing perturbation sample of the same pair and budget.
    pub fn explain_clusters_with_set(
        &self,
        tokenized: &TokenizedPair,
        set: &PerturbationSet,
    ) -> Result<ClusterExplanation, crate::ExplainError> {
        let n = tokenized.len();
        if n == 0 {
            return Err(crate::ExplainError::EmptyPair);
        }
        if self.options.tau <= 0.0 || self.options.tau > 1.0 {
            return Err(crate::ExplainError::InvalidTau(self.options.tau));
        }
        em_obs::counter!("crew/explanations", 1);
        let word_fit = {
            let _span = em_obs::span!("crew/word_surrogate");
            fit_word_surrogate(set, &self.options.surrogate)?
        };
        let word_level = WordExplanation {
            explainer: "crew".to_string(),
            words: words_of(tokenized),
            weights: word_fit.weights.clone(),
            base_score: set.base_score(),
            intercept: word_fit.intercept,
            surrogate_r2: word_fit.r_squared,
        };

        // Degenerate case: a single word is its own cluster.
        if n == 1 {
            return Ok(ClusterExplanation {
                clusters: vec![WordCluster {
                    member_indices: vec![0],
                    weight: word_fit.weights[0],
                    coherence: 1.0,
                }],
                selected_k: 1,
                group_r2: word_fit.r_squared,
                silhouette: 0.0,
                word_level,
            });
        }

        // 2. Combined distance over the three knowledge sources.
        let distances = {
            let _span = em_obs::span!("crew/distances");
            combined_distances_with(
                tokenized,
                &self.embeddings,
                &word_fit.weights,
                self.options.knowledge,
                &self.options.semantic,
            )?
        };

        // 3. Candidate partitions at every K, from the configured driver.
        //    (Agglomerative: one constrained dendrogram cut at each K;
        //    k-medoids ablation: an independent run per K.)
        let partitions = {
            let _span = em_obs::span!("crew/cluster");
            self.candidate_partitions(&distances, &word_fit.weights, n)?
        };

        // 4. Model selection over K: evaluate the group surrogate at every
        //    candidate partition, then pick the smallest K retaining at
        //    least `tau` of the *best achievable* group fidelity — the knee
        //    of the fidelity-vs-size curve. (Relative-to-best rather than
        //    relative-to-word-level: the word surrogate has more degrees of
        //    freedom and its R² may be unreachable by any grouping, which
        //    would otherwise push K to the ceiling.)
        let (selected_k, labels, group_fit, sil) = {
            let _span = em_obs::span!("crew/model_select");
            let mut cuts: Vec<(usize, Vec<usize>, crate::surrogate::SurrogateFit, f64)> =
                Vec::with_capacity(partitions.len());
            let mut best_r2 = f64::NEG_INFINITY;
            for (k, labels, sil) in partitions {
                let groups = em_cluster::groups_from_labels(&labels);
                let fit = fit_group_surrogate(set, &groups, &self.options.surrogate)?;
                best_r2 = best_r2.max(fit.r_squared);
                cuts.push((k, labels, fit, sil));
            }
            let target_r2 = self.options.tau * best_r2.max(0.0);
            let chosen = cuts
                .iter()
                .position(|(_, _, fit, _)| fit.r_squared >= target_r2)
                .unwrap_or(cuts.len() - 1);
            cuts.swap_remove(chosen)
        };

        // 5. Build ranked clusters with coherence.
        let mut groups = em_cluster::groups_from_labels(&labels);
        // Order members inside each cluster by their word-level importance
        // (most influential first) — this is both the natural display order
        // and the order deletion-based fidelity metrics walk a unit in.
        for g in &mut groups {
            g.sort_by(|&a, &b| {
                word_fit.weights[b]
                    .abs()
                    .partial_cmp(&word_fit.weights[a].abs())
                    .unwrap()
                    .then(a.cmp(&b))
            });
        }
        let mut clusters: Vec<WordCluster> = groups
            .into_iter()
            .enumerate()
            .map(|(g, member_indices)| {
                let coherence = semantic_coherence(
                    word_level.words.as_slice(),
                    &member_indices,
                    &self.embeddings,
                );
                WordCluster {
                    member_indices,
                    weight: group_fit.weights[g],
                    coherence,
                }
            })
            .collect();
        clusters.sort_by(|a, b| {
            b.weight
                .abs()
                .partial_cmp(&a.weight.abs())
                .unwrap()
                .then(a.member_indices[0].cmp(&b.member_indices[0]))
        });

        Ok(ClusterExplanation {
            word_level,
            clusters,
            selected_k,
            group_r2: group_fit.r_squared,
            silhouette: sil,
        })
    }

    /// Sweep every K and report `(k, group_r2, silhouette)` — the series
    /// behind the fidelity-vs-K figure.
    pub fn k_sweep(
        &self,
        matcher: &dyn Matcher,
        pair: &EntityPair,
    ) -> Result<Vec<(usize, f64, f64)>, crate::ExplainError> {
        let tokenized = TokenizedPair::new(pair.clone());
        if tokenized.is_empty() {
            return Err(crate::ExplainError::EmptyPair);
        }
        let set = perturb(&tokenized, matcher, &self.options.perturb)?;
        self.k_sweep_with_set(&tokenized, &set)
    }

    /// The matcher-query-free tail of [`Crew::k_sweep`], from an existing
    /// perturbation sample of the same pair and budget.
    pub fn k_sweep_with_set(
        &self,
        tokenized: &TokenizedPair,
        set: &PerturbationSet,
    ) -> Result<Vec<(usize, f64, f64)>, crate::ExplainError> {
        if tokenized.is_empty() {
            return Err(crate::ExplainError::EmptyPair);
        }
        let word_fit = fit_word_surrogate(set, &self.options.surrogate)?;
        let distances = combined_distances_with(
            tokenized,
            &self.embeddings,
            &word_fit.weights,
            self.options.knowledge,
            &self.options.semantic,
        )?;
        // Same candidate partitions as the main pipeline (configured
        // algorithm, linkage and constraints), so the sweep shows exactly
        // the options the selection rule chose among.
        let partitions =
            self.candidate_partitions(&distances, &word_fit.weights, tokenized.len())?;
        let mut out = Vec::new();
        for (k, labels, sil) in partitions {
            let groups = em_cluster::groups_from_labels(&labels);
            let fit = fit_group_surrogate(set, &groups, &self.options.surrogate)?;
            out.push((k, fit.r_squared, sil));
        }
        Ok(out)
    }
}

impl Explainer for Crew {
    fn name(&self) -> &str {
        "crew"
    }

    /// Word-level view of CREW: each word inherits its cluster's weight
    /// split evenly among members (so cluster structure is reflected in the
    /// word ranking used by the shared fidelity metrics).
    fn explain(
        &self,
        matcher: &dyn Matcher,
        pair: &EntityPair,
    ) -> Result<WordExplanation, crate::ExplainError> {
        let ce = self.explain_clusters(matcher, pair)?;
        let mut weights = vec![0.0; ce.word_level.words.len()];
        for cluster in &ce.clusters {
            let share = cluster.weight / cluster.member_indices.len() as f64;
            for &i in &cluster.member_indices {
                weights[i] = share;
            }
        }
        Ok(WordExplanation {
            explainer: "crew".to_string(),
            words: ce.word_level.words.clone(),
            weights,
            base_score: ce.word_level.base_score,
            intercept: ce.word_level.intercept,
            surrogate_r2: ce.group_r2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{Record, Schema, Side};
    use em_embed::EmbeddingOptions;

    /// Matcher scoring by overlap of title tokens (word-sensitive).
    struct OverlapMatcher;
    impl Matcher for OverlapMatcher {
        fn name(&self) -> &str {
            "overlap"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            em_text::jaccard(
                &em_text::tokenize(&pair.left().full_text()),
                &em_text::tokenize(&pair.right().full_text()),
            )
        }
    }

    fn embeddings() -> Arc<WordEmbeddings> {
        let corpus: Vec<Vec<String>> = [
            "sonix bravia tv black",
            "sonix bravia television black",
            "veltron qled tv white",
            "veltron qled television white",
            "sonix tv",
            "veltron television",
        ]
        .iter()
        .map(|s| em_text::tokenize(s))
        .collect();
        Arc::new(
            WordEmbeddings::train(
                corpus.iter().map(|v| v.as_slice()),
                EmbeddingOptions {
                    dimensions: 16,
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    }

    fn pair() -> EntityPair {
        let schema = Arc::new(Schema::new(vec!["title", "brand"]));
        EntityPair::new(
            schema,
            Record::new(0, vec!["sonix bravia tv black".into(), "sonix".into()]),
            Record::new(1, vec!["sonix bravia television".into(), "sonix".into()]),
        )
        .unwrap()
    }

    fn crew() -> Crew {
        Crew::new(
            embeddings(),
            CrewOptions {
                perturb: PerturbOptions {
                    samples: 200,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn produces_a_partition_of_all_words() {
        let c = crew();
        let ce = c.explain_clusters(&OverlapMatcher, &pair()).unwrap();
        let n = ce.word_level.words.len();
        let mut seen = vec![false; n];
        for cl in &ce.clusters {
            for &i in &cl.member_indices {
                assert!(!seen[i], "word {i} in two clusters");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "partition must cover all words");
        assert_eq!(ce.clusters.len(), ce.selected_k);
        assert!(ce.selected_k >= 1 && ce.selected_k <= 10);
    }

    #[test]
    fn clusters_are_fewer_than_words() {
        let c = crew();
        let ce = c.explain_clusters(&OverlapMatcher, &pair()).unwrap();
        assert!(
            ce.selected_k < ce.word_level.words.len(),
            "CREW should compress {} words into fewer clusters, got {}",
            ce.word_level.words.len(),
            ce.selected_k
        );
    }

    #[test]
    fn group_fidelity_close_to_word_fidelity() {
        let c = crew();
        let ce = c.explain_clusters(&OverlapMatcher, &pair()).unwrap();
        assert!(
            ce.group_r2 >= 0.9 * ce.word_level.surrogate_r2 - 0.05,
            "group R² {} vs word R² {}",
            ce.group_r2,
            ce.word_level.surrogate_r2
        );
    }

    #[test]
    fn clusters_ranked_by_absolute_weight() {
        let c = crew();
        let ce = c.explain_clusters(&OverlapMatcher, &pair()).unwrap();
        for w in ce.clusters.windows(2) {
            assert!(w[0].weight.abs() >= w[1].weight.abs() - 1e-12);
        }
        for cl in &ce.clusters {
            assert!((0.0..=1.0 + 1e-9).contains(&cl.coherence));
        }
    }

    #[test]
    fn explain_is_deterministic() {
        let c = crew();
        let a = c.explain_clusters(&OverlapMatcher, &pair()).unwrap();
        let b = c.explain_clusters(&OverlapMatcher, &pair()).unwrap();
        assert_eq!(a.selected_k, b.selected_k);
        assert_eq!(a.word_level.weights, b.word_level.weights);
        for (x, y) in a.clusters.iter().zip(&b.clusters) {
            assert_eq!(x.member_indices, y.member_indices);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn word_view_spreads_cluster_weight() {
        let c = crew();
        let we = c.explain(&OverlapMatcher, &pair()).unwrap();
        let ce = c.explain_clusters(&OverlapMatcher, &pair()).unwrap();
        // Sum of word weights equals sum of cluster weights.
        let word_sum: f64 = we.weights.iter().sum();
        let cluster_sum: f64 = ce.clusters.iter().map(|c| c.weight).sum();
        assert!((word_sum - cluster_sum).abs() < 1e-9);
        assert_eq!(we.explainer, "crew");
    }

    #[test]
    fn k_sweep_covers_range_and_r2_grows() {
        let c = crew();
        let sweep = c.k_sweep(&OverlapMatcher, &pair()).unwrap();
        // With cannot-link constraints the smallest achievable K may
        // exceed 1; the sweep still covers the selection range.
        assert!(sweep[0].0 >= 1);
        assert!(sweep.len() >= 5);
        // Fidelity at max K should be at least fidelity at K=1.
        assert!(sweep.last().unwrap().1 >= sweep[0].1 - 1e-9);
    }

    #[test]
    fn single_word_pair_yields_one_cluster() {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let p = EntityPair::new(
            schema,
            Record::new(0, vec!["solo".into()]),
            Record::new(1, vec!["".into()]),
        )
        .unwrap();
        let c = crew();
        let ce = c.explain_clusters(&OverlapMatcher, &p).unwrap();
        assert_eq!(ce.selected_k, 1);
        assert_eq!(ce.clusters[0].member_indices, vec![0]);
    }

    #[test]
    fn empty_pair_is_error() {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let p = EntityPair::new(
            schema,
            Record::new(0, vec!["".into()]),
            Record::new(1, vec!["".into()]),
        )
        .unwrap();
        assert!(matches!(
            crew().explain_clusters(&OverlapMatcher, &p),
            Err(crate::ExplainError::EmptyPair)
        ));
    }

    #[test]
    fn kmedoids_variant_also_partitions() {
        let opts = CrewOptions {
            algorithm: ClusterAlgorithm::KMedoids,
            perturb: PerturbOptions {
                samples: 100,
                ..Default::default()
            },
            ..Default::default()
        };
        let c = Crew::new(embeddings(), opts);
        let ce = c.explain_clusters(&OverlapMatcher, &pair()).unwrap();
        let n = ce.word_level.words.len();
        let covered: usize = ce.clusters.iter().map(|cl| cl.member_indices.len()).sum();
        assert_eq!(covered, n);
        assert!(ce.selected_k >= 1);
        // Deterministic too.
        let c2 = Crew::new(
            embeddings(),
            CrewOptions {
                algorithm: ClusterAlgorithm::KMedoids,
                perturb: PerturbOptions {
                    samples: 100,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let ce2 = c2.explain_clusters(&OverlapMatcher, &pair()).unwrap();
        assert_eq!(ce.selected_k, ce2.selected_k);
    }

    #[test]
    fn invalid_tau_is_error() {
        let opts = CrewOptions {
            tau: 0.0,
            ..Default::default()
        };
        let c = Crew::new(embeddings(), opts);
        assert!(matches!(
            c.explain_clusters(&OverlapMatcher, &pair()),
            Err(crate::ExplainError::InvalidTau(_))
        ));
    }

    #[test]
    fn cross_record_same_words_tend_to_cluster_together() {
        // With attribute + semantic knowledge, the "sonix" on both sides of
        // the title should co-cluster more often than with unrelated words.
        let c = crew();
        let ce = c.explain_clusters(&OverlapMatcher, &pair()).unwrap();
        let words = &ce.word_level.words;
        // Find the two title "sonix" occurrences.
        let l_sonix = words
            .iter()
            .position(|w| w.text == "sonix" && w.side == Side::Left && w.attribute == 0)
            .unwrap();
        let r_sonix = words
            .iter()
            .position(|w| w.text == "sonix" && w.side == Side::Right && w.attribute == 0)
            .unwrap();
        let cluster_of = |idx: usize| {
            ce.clusters
                .iter()
                .position(|c| c.member_indices.contains(&idx))
                .unwrap()
        };
        assert_eq!(
            cluster_of(l_sonix),
            cluster_of(r_sonix),
            "identical cross-record words should share a cluster"
        );
    }
}
