//! # em-pool
//!
//! A shared worker pool for the perturbation engine: a dependency-free
//! work queue over `std::thread`, consistent with the workspace's
//! hermetic-substrate rule (no external crates).
//!
//! The pool exists because perturbation-based explainers issue the same
//! shape of work over and over — "evaluate this closure for indices
//! `0..n`" — and spawning scoped threads per call both pays thread
//! start-up cost on every explanation and (with fixed equal-split
//! chunking) load-imbalances whenever task costs are heterogeneous.
//! Here, workers are started once and pull indices from a shared atomic
//! counter, so fast tasks never wait on slow ones and the threads are
//! reused across explainer calls.
//!
//! ## Determinism
//!
//! [`WorkerPool::run`] assigns each index exactly once and the task
//! writes results keyed by index, so outputs are independent of which
//! thread claims which index. Every caller in this workspace relies on
//! that: same seed → bitwise-identical results at any worker count.
//!
//! ## Re-entrancy
//!
//! A task executing on the pool may itself call [`WorkerPool::run`]
//! (pair-level parallelism in `em-eval` nests explainer query loops).
//! Nested calls are detected via a thread-local flag and executed
//! inline on the calling thread — never queued — so the pool cannot
//! deadlock on itself.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// True while this thread is executing pool tasks (worker threads
    /// while claiming, and the submitting thread while participating).
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// One published batch of indexed tasks.
///
/// The closure pointer is lifetime-erased: [`WorkerPool::run`] does not
/// return until every claimed index has finished, so the pointee (a
/// closure on the submitter's stack) outlives every dereference.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    /// The submitter's span position at publication; workers adopt it so
    /// fanned-out work keeps accumulating under the submitting span.
    ctx: em_obs::SpanContext,
    /// Next index to claim.
    next: AtomicUsize,
    total: usize,
    /// Indices not yet completed; `run` returns when this hits zero.
    pending: AtomicUsize,
    /// Participant slots taken (the submitter holds slot 0).
    participants: AtomicUsize,
    /// Cap on participating threads (submitter included).
    max_participants: usize,
}

// SAFETY: the raw closure pointer is only dereferenced between job
// publication and completion, during which `run` keeps the closure
// alive; the closure itself is `Sync` so shared calls are sound.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim and execute indices until the queue is exhausted.
    fn work(&self, shared: &Shared) {
        let _ctx = em_obs::enter_context(self.ctx);
        loop {
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.total {
                return;
            }
            // SAFETY: see the Send/Sync justification above.
            (unsafe { &*self.task })(i);
            if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last task done: wake the submitter. Taking the lock
                // before notifying closes the lost-wakeup race with a
                // submitter that has checked `pending` but not yet
                // parked on the condvar.
                let _guard = shared.state.lock().unwrap();
                shared.done.notify_all();
            }
        }
    }
}

/// Condvar-protected pool state.
struct State {
    job: Option<Arc<Job>>,
    /// Bumped on every publication so a worker never re-enters a job it
    /// has already drained.
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on publication and shutdown.
    wake: Condvar,
    /// Signalled when a job's last task completes.
    done: Condvar,
}

/// A fixed set of worker threads executing indexed task batches.
///
/// `run` is the only entry point; batches are serialized internally, so
/// a pool can be shared freely (e.g. the process-wide [`global`] pool).
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes job publication across submitting threads.
    issue: Mutex<()>,
}

impl WorkerPool {
    /// Start a pool with `workers` helper threads. The submitting
    /// thread always participates in `run`, so total parallelism is
    /// `workers + 1`. `workers == 0` is valid: every `run` executes
    /// inline.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("em-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
            issue: Mutex::new(()),
        }
    }

    /// Number of helper threads (not counting submitters).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Execute `task(i)` for every `i in 0..total`, using at most
    /// `max_threads` threads (submitter included), and return once all
    /// indices have completed.
    ///
    /// Falls back to an inline sequential loop when parallelism is
    /// unavailable or pointless: `max_threads <= 1`, no workers, tiny
    /// batches, or a nested call from inside a pool task.
    pub fn run(&self, total: usize, max_threads: usize, task: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        // Counted before the inline-vs-pooled branch: the branch taken
        // depends on nesting (schedule-dependent under concurrent
        // submitters), but the number of batches and tasks does not.
        em_obs::counter!("pool/runs", 1);
        em_obs::counter!("pool/tasks", total as u64);
        let nested = IN_POOL.with(|f| f.get());
        if max_threads <= 1 || self.workers.is_empty() || nested || total < 2 {
            for i in 0..total {
                task(i);
            }
            return;
        }

        let _issue = self.issue.lock().unwrap();
        // SAFETY: erases the borrow's lifetime. `run` does not return
        // until `pending` reaches zero, i.e. after the last dereference,
        // and the trailing `state.job = None` drop of the published Arc
        // means no worker can observe this job afterwards.
        let task_erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        let job = Arc::new(Job {
            task: task_erased as *const (dyn Fn(usize) + Sync),
            ctx: em_obs::current_context(),
            next: AtomicUsize::new(0),
            total,
            pending: AtomicUsize::new(total),
            participants: AtomicUsize::new(1),
            max_participants: max_threads.max(1),
        });

        {
            let mut state = self.shared.state.lock().unwrap();
            state.job = Some(Arc::clone(&job));
            state.epoch = state.epoch.wrapping_add(1);
            self.shared.wake.notify_all();
        }

        // Participate: the submitter is participant 0.
        IN_POOL.with(|f| f.set(true));
        job.work(&self.shared);
        IN_POOL.with(|f| f.set(false));

        // Wait for workers still finishing claimed indices.
        let mut state = self.shared.state.lock().unwrap();
        while job.pending.load(Ordering::SeqCst) != 0 {
            state = self.shared.done.wait(state).unwrap();
        }
        state.job = None;
    }

    /// Execute `task(i)` for every `i in 0..total` in consecutive
    /// bounded batches of at most `batch` indices, with a barrier
    /// between batches. The streaming pipeline shards its candidate
    /// stream this way so at most `batch` tasks' worth of intermediate
    /// state is ever live at once — the memory bound that keeps peak
    /// RSS flat regardless of `total`.
    ///
    /// Index assignment is identical to `total/batch` successive
    /// [`WorkerPool::run`] calls, so the determinism contract (outputs
    /// keyed by index, independent of thread count) carries over.
    pub fn run_batched(
        &self,
        total: usize,
        batch: usize,
        max_threads: usize,
        task: &(dyn Fn(usize) + Sync),
    ) {
        let batch = batch.max(1);
        let mut start = 0;
        while start < total {
            let len = batch.min(total - start);
            self.run(len, max_threads, &|i| task(start + i));
            start += len;
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.wake.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_POOL.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(job) = &state.job {
                    if state.epoch != seen_epoch {
                        seen_epoch = state.epoch;
                        break Arc::clone(job);
                    }
                }
                state = shared.wake.wait(state).unwrap();
            }
        };
        // Respect the job's thread cap: claim a participant slot or
        // skip the job entirely (the epoch is already marked seen).
        if job.participants.fetch_add(1, Ordering::SeqCst) < job.max_participants {
            job.work(shared);
        }
    }
}

/// The process-wide pool, sized to the machine (`available_parallelism
/// - 1` helper threads; the submitting thread supplies the last lane).
/// Callers pass their own `max_threads` to [`WorkerPool::run`], so a
/// budget of 1 still executes inline regardless of pool size.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let lanes = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        WorkerPool::new(lanes.saturating_sub(1))
    })
}

/// The thread budget a `threads: 0` ("auto") option resolves to: every
/// helper thread of the [`global`] pool plus the submitting thread.
pub fn default_threads() -> usize {
    global().workers() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn collect_squares(pool: &WorkerPool, n: usize, threads: usize) -> Vec<u64> {
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run(n, threads, &|i| {
            out[i].store((i as u64) * (i as u64) + 1, Ordering::SeqCst);
        });
        out.into_iter().map(|a| a.into_inner()).collect()
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        for n in [1usize, 2, 7, 64, 257] {
            let got = collect_squares(&pool, n, 4);
            let want: Vec<u64> = (0..n as u64).map(|i| i * i + 1).collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 0);
        assert_eq!(collect_squares(&pool, 10, 8), collect_squares(&pool, 10, 1));
    }

    #[test]
    fn pool_is_reusable_across_many_batches() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(17, 3, &|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50 * 17);
    }

    #[test]
    fn nested_runs_execute_inline_without_deadlock() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.run(8, 4, &|_| {
            pool.run(5, 4, &|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8 * 5);
    }

    #[test]
    fn thread_cap_is_respected() {
        let pool = WorkerPool::new(7);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run(64, 2, &|_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak concurrency {} exceeded cap 2",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn batched_run_covers_every_index_once() {
        let pool = WorkerPool::new(3);
        for (n, batch) in [(0usize, 4usize), (1, 4), (10, 3), (12, 4), (257, 64)] {
            let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.run_batched(n, batch, 4, &|i| {
                out[i].fetch_add(i as u64 + 1, Ordering::SeqCst);
            });
            let got: Vec<u64> = out.into_iter().map(|a| a.into_inner()).collect();
            let want: Vec<u64> = (1..=n as u64).collect();
            assert_eq!(got, want, "n={n} batch={batch}");
        }
    }

    #[test]
    fn global_pool_is_shared_and_alive() {
        let a = global() as *const WorkerPool;
        let b = global() as *const WorkerPool;
        assert_eq!(a, b);
        let counter = AtomicUsize::new(0);
        global().run(9, 4, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn results_do_not_depend_on_worker_count() {
        let want: Vec<u64> = (0..199u64).map(|i| i * i + 1).collect();
        for workers in [0usize, 1, 2, 7] {
            let pool = WorkerPool::new(workers);
            assert_eq!(collect_squares(&pool, 199, 8), want, "workers={workers}");
        }
    }
}
