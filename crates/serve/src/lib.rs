//! # em-serve
//!
//! The online explanation service: a zero-dependency HTTP/1.1 server
//! (std `TcpListener`, in-tree parser and JSON — same hermetic spirit as
//! `em-rngs`/`em-pool`/`em-obs`) that loads a trained matcher and
//! embeddings once and serves `POST /predict` and `POST /explain`.
//!
//! The point is cross-request batching: a coalescing front queue
//! ([`queue::Coalescer`]) merges requests arriving within a batching
//! window into one `predict_proba_batch` / shared-`PerturbationSet` pass
//! through the `EvalSession` stores, so concurrent clients share matcher
//! queries. `em-obs` spans (`serve/accept`, `serve/parse`,
//! `serve/coalesce`, `serve/query`) attribute per-request latency, and
//! store-hit counters prove the sharing. See DESIGN.md § Serving
//! architecture.
//!
//! ## Protocol
//!
//! ```text
//! POST /predict  {"pairs":[{"left":["v1",...],"right":["w1",...]}]}
//!   -> {"results":[{"probability":0.93,"match":true}]}
//! POST /explain  {"pairs":[...],"explainer":"crew"}   // label optional
//!   -> {"results":[{"explainer":"crew","explanation":{...}}]}
//! GET  /health   -> {"status":"ok"}
//! GET  /stats    -> store hit/miss/coalesced counters
//! ```
//!
//! Attribute arrays must match the serving context's schema width.
//! Errors come back as `{"error":"..."}` with 400/404/405/408/413/422/
//! 500/503; a slow or malformed client is cut off by per-connection read
//! timeouts and byte caps without wedging the accept loop.

pub mod http;
pub mod json;
pub mod queue;
pub mod server;

pub use http::{
    reason, write_request, write_response, Connection, Limits, ParseError, Request, Response,
};
pub use json::{escape_json, num_json, parse_json, Json, JsonError};
pub use queue::{Coalescer, Job, JobKind, Reply, ServeError};
pub use server::{explanation_json, ServeOptions, ServeState, Server, ServerHandle};
