//! The server proper: accept loop, per-connection handlers, the routing
//! layer, and the dispatcher thread that drains the [`Coalescer`].
//!
//! Threading model (the worker/web split the ROADMAP cites):
//!
//! * **accept thread** — blocks in `TcpListener::accept`, spawns one
//!   handler thread per connection (capped at
//!   [`ServeOptions::max_connections`]), and joins them all on shutdown.
//! * **handler threads** — parse requests under a read timeout and
//!   byte caps ([`crate::http`]), translate bodies into [`Job`]s, and
//!   block on the reply channel. A slow or malformed client costs its
//!   own thread a timeout, never the accept loop or the dispatcher.
//! * **dispatcher thread** — the only caller into the matcher/stores.
//!   Each [`Coalescer::next_batch`] window is deduplicated by pair
//!   fingerprint, answered with one `predict_proba_batch` plus one
//!   `EvalSession` store pass (explanations fan out over `em-pool`),
//!   then fanned back out to every coalesced duplicate.
//!
//! Shutdown never drops an accepted request: stop-flag → wake the accept
//! loop → join handlers (each finishes its in-flight request; the
//! dispatcher is still live so replies arrive) → drain the queue → join
//! the dispatcher (which flushes any leftovers first).

use crate::http::{write_response, Connection, Limits, ParseError, Request};
use crate::json::{escape_json, num_json, parse_json, Json};
use crate::queue::{Coalescer, Job, JobKind, Reply, ServeError};
use crew_core::report::{cluster_explanation_to_json, word_explanation_to_json};
use em_data::EntityPair;
use em_eval::{
    pair_fingerprint, EvalContext, EvalSession, ExperimentConfig, ExplainerKind, ExplanationOutput,
    MatcherKind, StoreBudget,
};
use em_matchers::Matcher;
use em_synth::Family;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything loaded once at startup and shared by every request: the
/// prepared context (dataset, embeddings), the trained matcher, and the
/// memoized session stores that make cross-request sharing work.
pub struct ServeState {
    pub session: EvalSession,
    pub ctx: Arc<EvalContext>,
    pub matcher: Arc<dyn Matcher>,
    pub matcher_kind: MatcherKind,
    /// Probability cutoff reported as `"match"` in predict responses.
    pub threshold: f64,
}

impl ServeState {
    /// Load the serving state: prepare the context and train the
    /// configured matcher eagerly, so the first request pays no
    /// training latency.
    pub fn load(family: Family, config: ExperimentConfig) -> Result<Self, em_eval::EvalError> {
        ServeState::build(family, EvalSession::new(config))
    }

    /// Like [`load`](ServeState::load) but with a byte-budgeted
    /// explanation store — the right default for a long-lived process.
    pub fn load_bounded(
        family: Family,
        config: ExperimentConfig,
        budget: StoreBudget,
    ) -> Result<Self, em_eval::EvalError> {
        ServeState::build(family, EvalSession::with_budget(config, budget))
    }

    fn build(family: Family, session: EvalSession) -> Result<Self, em_eval::EvalError> {
        let matcher_kind = session.config().matcher;
        let ctx = session.context(family)?;
        let matcher = ctx.matcher(matcher_kind)?;
        Ok(ServeState {
            session,
            ctx,
            matcher,
            matcher_kind,
            threshold: 0.5,
        })
    }
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (tests, load_gen).
    pub addr: String,
    /// How long the dispatcher holds a batch open for stragglers.
    pub window: Duration,
    /// Maximum jobs answered in one batch pass.
    pub max_batch: usize,
    /// `em-pool` fan-out width for the explanation stage of a batch.
    pub query_jobs: usize,
    /// Per-connection read (and write) timeout: a stalled client is cut
    /// off after this long, and shutdown join latency is bounded by it.
    pub read_timeout: Duration,
    /// Parser byte caps.
    pub limits: Limits,
    /// Concurrent connections beyond this are answered 503 and closed.
    pub max_connections: usize,
    /// Pairs accepted in one request body.
    pub max_pairs_per_request: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            window: Duration::from_millis(2),
            max_batch: 64,
            query_jobs: em_pool::default_threads(),
            read_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            max_connections: 64,
            max_pairs_per_request: 64,
        }
    }
}

struct Shared {
    state: Arc<ServeState>,
    queue: Coalescer,
    stop: AtomicBool,
    opts: ServeOptions,
}

/// Handle to a running server. Dropping it performs a graceful shutdown;
/// call [`shutdown`](ServerHandle::shutdown) to do it explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Bind, spawn the accept and dispatcher threads, and return
    /// immediately. The bound address (with the resolved port) is on the
    /// handle.
    pub fn start(state: Arc<ServeState>, opts: ServeOptions) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state,
            queue: Coalescer::new(opts.window, opts.max_batch),
            stop: AtomicBool::new(false),
            opts,
        });

        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatch_loop(&shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };

        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
        })
    }
}

impl ServerHandle {
    /// The bound address (resolved port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Hit/miss stats of the underlying session (for assertions and the
    /// load generator's sharing proof).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.shared.state
    }

    /// Graceful shutdown: every accepted request is answered before the
    /// threads exit. Idempotent. Join latency is bounded by
    /// [`ServeOptions::read_timeout`] (idle keep-alive connections must
    /// time out before their handler notices the stop flag).
    pub fn shutdown(&mut self) {
        if self.accept.is_none() && self.dispatcher.is_none() {
            return;
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        // The accept thread blocks in accept(); a throwaway connection
        // wakes it so it can observe the flag and start joining handlers.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Handlers are gone, so nothing can submit anymore; flush what's
        // queued and let the dispatcher exit.
        self.shared.queue.drain();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            // The shutdown wake-up connection (or a late client): close
            // without reading.
            break;
        }
        let _span = em_obs::root_span!("serve/accept");
        em_obs::counter!("serve/connections", 1);
        handlers.retain(|h| !h.is_finished());
        if handlers.len() >= shared.opts.max_connections {
            em_obs::counter!("serve/rejected_over_capacity", 1);
            let mut stream = stream;
            let _ = write_response(
                &mut stream,
                503,
                "application/json",
                b"{\"error\":\"too many connections\"}",
                true,
            );
            continue;
        }
        let shared = Arc::clone(shared);
        handlers.push(std::thread::spawn(move || {
            handle_connection(&shared, stream)
        }));
    }
    // Handlers finish their in-flight request and exit on the stop flag
    // (or their read timeout); the dispatcher is still running, so every
    // submitted job gets its reply.
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.opts.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut conn = Connection::new(stream);
    loop {
        let parsed = {
            let _span = em_obs::root_span!("serve/parse");
            conn.read_request(&shared.opts.limits)
        };
        match parsed {
            Ok(None) => break,
            Ok(Some(req)) => {
                em_obs::counter!("serve/requests", 1);
                let (status, body) = match route(shared, &req) {
                    Ok(body) => (200, body),
                    Err(e) => (e.status(), error_body(&e.message())),
                };
                let close = !req.keep_alive() || shared.stop.load(Ordering::SeqCst);
                if write_response(
                    conn.stream_mut(),
                    status,
                    "application/json",
                    body.as_bytes(),
                    close,
                )
                .is_err()
                    || close
                {
                    break;
                }
            }
            Err(e) => {
                let status = match e {
                    ParseError::Malformed(_) => Some(400),
                    ParseError::TooLarge(_) => Some(413),
                    ParseError::TimedOut => Some(408),
                    // Idle keep-alive timeout, peer vanished mid-message,
                    // transport error: nobody is listening — just close.
                    ParseError::TimedOutIdle | ParseError::Truncated | ParseError::Io(_) => None,
                };
                if let Some(status) = status {
                    em_obs::counter!("serve/bad_requests", 1);
                    let _ = write_response(
                        conn.stream_mut(),
                        status,
                        "application/json",
                        error_body(&e.to_string()).as_bytes(),
                        true,
                    );
                }
                break;
            }
        }
    }
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape_json(message))
}

fn route(shared: &Arc<Shared>, req: &Request) -> Result<String, ServeError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => Ok("{\"status\":\"ok\"}".to_string()),
        ("GET", "/stats") => Ok(stats_body(&shared.state)),
        ("POST", "/predict") => handle_batch(shared, &req.body, None),
        ("POST", "/explain") => {
            let explainer = explainer_from_body(&req.body)?;
            handle_batch(shared, &req.body, Some(explainer))
        }
        ("GET" | "POST", "/predict" | "/explain" | "/health" | "/stats") => {
            Err(ServeError::MethodNotAllowed)
        }
        _ => Err(ServeError::NotFound),
    }
}

fn stats_body(state: &ServeState) -> String {
    let stats_json = |s: em_eval::StoreStats| {
        format!(
            "{{\"hits\":{},\"misses\":{},\"coalesced\":{},\"evictions\":{}}}",
            s.hits, s.misses, s.coalesced, s.evictions
        )
    };
    format!(
        "{{\"matcher\":\"{}\",\"family\":\"{:?}\",\"explanations\":{},\"perturbation_sets\":{}}}",
        state.matcher_kind.label(),
        state.ctx.family,
        stats_json(state.session.explanations().stats()),
        stats_json(state.session.explanations().perturbation_stats()),
    )
}

fn explainer_from_body(body: &[u8]) -> Result<ExplainerKind, ServeError> {
    let doc = parse_body(body)?;
    match doc.get("explainer") {
        None => Ok(ExplainerKind::Crew),
        Some(v) => {
            let label = v
                .as_str()
                .ok_or_else(|| ServeError::BadRequest("'explainer' must be a string".into()))?;
            ExplainerKind::all()
                .into_iter()
                .find(|k| k.label() == label)
                .ok_or_else(|| ServeError::Unprocessable(format!("unknown explainer '{label}'")))
        }
    }
}

fn parse_body(body: &[u8]) -> Result<Json, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("body is not UTF-8".into()))?;
    parse_json(text).map_err(|e| ServeError::BadRequest(format!("invalid JSON: {e}")))
}

/// Parse the request's pairs, enqueue one job per pair, block for the
/// replies, and serialise the response in request order.
fn handle_batch(
    shared: &Arc<Shared>,
    body: &[u8],
    explainer: Option<ExplainerKind>,
) -> Result<String, ServeError> {
    let pairs = parse_pairs(shared, body)?;
    let kind = match explainer {
        Some(e) => JobKind::Explain(e),
        None => JobKind::Predict,
    };
    let (tx, rx) = channel();
    let n = pairs.len();
    for (index, pair) in pairs.into_iter().enumerate() {
        let job = Job {
            kind,
            fingerprint: pair_fingerprint(&pair),
            pair,
            index,
            reply: tx.clone(),
        };
        if let Err(job) = shared.queue.submit(job) {
            let _ = job.reply.send((job.index, Err(ServeError::ShuttingDown)));
        }
    }
    drop(tx);

    let mut results: Vec<Option<Result<Reply, ServeError>>> = vec![None; n];
    for (index, result) in rx {
        results[index] = Some(result);
    }
    let mut out = String::from("{\"results\":[");
    for (i, slot) in results.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // A missing slot means the dispatcher died mid-batch — surface
        // it as a whole-request failure rather than a partial body.
        let reply =
            slot.ok_or_else(|| ServeError::Internal("dispatcher dropped a reply".into()))??;
        out.push_str(&reply_json(shared, &reply));
    }
    out.push_str("]}");
    Ok(out)
}

fn reply_json(shared: &Arc<Shared>, reply: &Reply) -> String {
    match reply {
        Reply::Probability(p) => format!(
            "{{\"probability\":{},\"match\":{}}}",
            num_json(*p),
            *p >= shared.state.threshold
        ),
        Reply::Explanation(output) => format!(
            "{{\"explainer\":\"{}\",\"explanation\":{}}}",
            output.kind.label(),
            explanation_json(output, &shared.state)
        ),
    }
}

/// Deterministic explanation payload via the shared `crew_core::report`
/// serializers. Deliberately excludes `elapsed` (the only
/// schedule-dependent field), so a served response is bitwise identical
/// to one rendered from a direct `EvalSession` call.
pub fn explanation_json(output: &ExplanationOutput, state: &ServeState) -> String {
    let schema = state.ctx.dataset.schema();
    match &output.cluster_explanation {
        Some(ce) => cluster_explanation_to_json(ce, schema),
        None => word_explanation_to_json(&output.word_level, schema),
    }
}

fn parse_pairs(shared: &Arc<Shared>, body: &[u8]) -> Result<Vec<EntityPair>, ServeError> {
    let doc = parse_body(body)?;
    let items = doc
        .get("pairs")
        .and_then(Json::as_array)
        .ok_or_else(|| ServeError::BadRequest("body must have a 'pairs' array".into()))?;
    if items.is_empty() {
        return Err(ServeError::BadRequest("'pairs' is empty".into()));
    }
    if items.len() > shared.opts.max_pairs_per_request {
        return Err(ServeError::Unprocessable(format!(
            "too many pairs in one request (max {})",
            shared.opts.max_pairs_per_request
        )));
    }
    let width = shared.state.ctx.dataset.schema().len();
    items
        .iter()
        .map(|item| {
            let side = |key: &str| -> Result<Vec<String>, ServeError> {
                let values = item
                    .get(key)
                    .and_then(Json::as_array)
                    .ok_or_else(|| ServeError::BadRequest(format!("pair missing '{key}' array")))?;
                if values.len() != width {
                    return Err(ServeError::Unprocessable(format!(
                        "'{key}' has {} values, schema has {width} attributes",
                        values.len()
                    )));
                }
                values
                    .iter()
                    .map(|v| {
                        v.as_str().map(str::to_string).ok_or_else(|| {
                            ServeError::BadRequest(format!("'{key}' values must be strings"))
                        })
                    })
                    .collect()
            };
            shared
                .state
                .ctx
                .pair_from_values(side("left")?, side("right")?)
                .map_err(|e| ServeError::Unprocessable(e.to_string()))
        })
        .collect()
}

/// The dispatcher: one batch window at a time, dedup → one backend pass
/// → fan replies back out.
fn dispatch_loop(shared: &Arc<Shared>) {
    while let Some(batch) = shared.queue.next_batch() {
        em_obs::counter!("serve/batches", 1);
        run_batch(shared, batch);
    }
}

/// Work items of one batch after dedup: unique pairs in first-seen
/// order, plus the job list for the reply fan-out.
struct Deduped {
    jobs: Vec<(Job, usize)>,
    predict_pairs: Vec<EntityPair>,
    explain_work: Vec<(ExplainerKind, EntityPair)>,
}

fn coalesce(batch: Vec<Job>) -> Deduped {
    let mut predict_slots: Vec<(u64, usize)> = Vec::new();
    let mut explain_slots: Vec<(ExplainerKind, u64, usize)> = Vec::new();
    let mut predict_pairs = Vec::new();
    let mut explain_work = Vec::new();
    let mut jobs = Vec::with_capacity(batch.len());
    let mut coalesced = 0usize;
    for job in batch {
        let slot = match job.kind {
            JobKind::Predict => match predict_slots.iter().find(|(fp, _)| *fp == job.fingerprint) {
                Some(&(_, slot)) => {
                    coalesced += 1;
                    slot
                }
                None => {
                    let slot = predict_pairs.len();
                    predict_slots.push((job.fingerprint, slot));
                    predict_pairs.push(job.pair.clone());
                    slot
                }
            },
            JobKind::Explain(kind) => {
                match explain_slots
                    .iter()
                    .find(|(k, fp, _)| *k == kind && *fp == job.fingerprint)
                {
                    Some(&(_, _, slot)) => {
                        coalesced += 1;
                        slot
                    }
                    None => {
                        let slot = explain_work.len();
                        explain_slots.push((kind, job.fingerprint, slot));
                        explain_work.push((kind, job.pair.clone()));
                        slot
                    }
                }
            }
        };
        jobs.push((job, slot));
    }
    // Always bump the counter (even by 0) so the trace schema check can
    // assert its presence on quiet runs.
    em_obs::counter!("serve/coalesced", coalesced as u64);
    Deduped {
        jobs,
        predict_pairs,
        explain_work,
    }
}

fn run_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    let deduped = {
        let _span = em_obs::root_span!("serve/coalesce");
        coalesce(batch)
    };

    let state = &shared.state;
    let (probabilities, explanations) = {
        let _span = em_obs::root_span!("serve/query");
        let probabilities = if deduped.predict_pairs.is_empty() {
            Vec::new()
        } else {
            state.matcher.predict_proba_batch(&deduped.predict_pairs)
        };
        // Explanations fan out over the pool; results land in
        // index-keyed slots so the fan-out order never shows.
        let n = deduped.explain_work.len();
        let slots: Vec<OnceLock<Result<Arc<ExplanationOutput>, ServeError>>> =
            (0..n).map(|_| OnceLock::new()).collect();
        em_pool::global().run(n, shared.opts.query_jobs, &|i| {
            let (kind, pair) = &deduped.explain_work[i];
            let result = state
                .session
                .explain_for(state.matcher_kind, *kind, &state.ctx, pair)
                .map_err(|e| ServeError::Internal(e.to_string()));
            let _ = slots[i].set(result);
        });
        let explanations: Vec<Result<Arc<ExplanationOutput>, ServeError>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|| Err(ServeError::Internal("explain slot unfilled".into())))
            })
            .collect();
        (probabilities, explanations)
    };

    for (job, slot) in deduped.jobs {
        let result = match job.kind {
            JobKind::Predict => Ok(Reply::Probability(probabilities[slot])),
            JobKind::Explain(_) => explanations[slot].clone().map(Reply::Explanation),
        };
        // A dead receiver (client hung up) is fine — drop the reply.
        let _ = job.reply.send((job.index, result));
    }
}
