//! The coalescing front queue: the piece that turns N concurrent
//! requests into one batched pass through the matcher and the
//! `EvalSession` stores.
//!
//! Connection threads [`submit`](Coalescer::submit) jobs; a single
//! dispatcher thread blocks in [`next_batch`](Coalescer::next_batch),
//! which waits for the first job, then keeps collecting until the
//! batching window closes (or the batch cap is hit). Everything the
//! window caught is answered by one `predict_proba_batch` call and one
//! store pass — concurrent requests for the *same* pair collapse to a
//! single matcher query (visible as explanation-store hits and the
//! `serve/coalesced` counter).

use em_data::EntityPair;
use em_eval::{ExplainerKind, ExplanationOutput};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a queued job asks of the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One `predict_proba` answer (batched across the window).
    Predict,
    /// One explanation of the given explainer.
    Explain(ExplainerKind),
}

/// A successful answer.
#[derive(Clone)]
pub enum Reply {
    Probability(f64),
    Explanation(Arc<ExplanationOutput>),
}

/// Service-level failure. `Clone` on purpose: one backend error fans out
/// to every coalesced duplicate of the failing job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Body is not the protocol shape (400).
    BadRequest(String),
    /// Unknown path (404).
    NotFound,
    /// Path exists, method wrong (405).
    MethodNotAllowed,
    /// Well-formed but semantically unusable — wrong attribute count,
    /// unknown explainer label (422).
    Unprocessable(String),
    /// The server is draining and no longer accepts new work (503).
    ShuttingDown,
    /// Backend failure (500).
    Internal(String),
}

impl ServeError {
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound => 404,
            ServeError::MethodNotAllowed => 405,
            ServeError::Unprocessable(_) => 422,
            ServeError::ShuttingDown => 503,
            ServeError::Internal(_) => 500,
        }
    }

    pub fn message(&self) -> String {
        match self {
            ServeError::BadRequest(m) => m.clone(),
            ServeError::NotFound => "no such endpoint".to_string(),
            ServeError::MethodNotAllowed => "method not allowed".to_string(),
            ServeError::Unprocessable(m) => m.clone(),
            ServeError::ShuttingDown => "server is shutting down".to_string(),
            ServeError::Internal(m) => m.clone(),
        }
    }
}

/// One unit of queued work: a pair plus where to send the answer. The
/// `index` threads the answer back to its slot in the originating
/// request (one request may enqueue many pairs).
pub struct Job {
    pub kind: JobKind,
    pub pair: EntityPair,
    /// `em_eval::pair_fingerprint` of `pair` — the coalescing identity.
    pub fingerprint: u64,
    /// Position within the originating request.
    pub index: usize,
    pub reply: Sender<(usize, Result<Reply, ServeError>)>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    draining: bool,
}

/// The window-batching queue between connection threads and the
/// dispatcher.
pub struct Coalescer {
    inner: Mutex<QueueState>,
    arrived: Condvar,
    window: Duration,
    max_batch: usize,
}

impl Coalescer {
    pub fn new(window: Duration, max_batch: usize) -> Self {
        Coalescer {
            inner: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                draining: false,
            }),
            arrived: Condvar::new(),
            window,
            max_batch: max_batch.max(1),
        }
    }

    /// Enqueue a job. After [`drain`](Coalescer::drain) the job is
    /// handed back so the caller can answer 503 itself (shutdown
    /// ordering means no accepted request should ever hit this path).
    pub fn submit(&self, job: Job) -> Result<(), Job> {
        let mut state = self.inner.lock().expect("queue lock poisoned");
        if state.draining {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.arrived.notify_all();
        Ok(())
    }

    /// Block until work is available, hold the batching window open to
    /// catch concurrent arrivals, then return everything caught (capped
    /// at `max_batch`). `None` means the queue is drained *and* empty —
    /// the dispatcher's signal to exit.
    pub fn next_batch(&self) -> Option<Vec<Job>> {
        let mut state = self.inner.lock().expect("queue lock poisoned");
        while state.jobs.is_empty() {
            if state.draining {
                return None;
            }
            state = self.arrived.wait(state).expect("queue lock poisoned");
        }
        // First job is in: keep the window open for stragglers so they
        // share the batch (draining skips the wait — flush immediately).
        let deadline = Instant::now() + self.window;
        while state.jobs.len() < self.max_batch && !state.draining {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (s, _) = self
                .arrived
                .wait_timeout(state, deadline - now)
                .expect("queue lock poisoned");
            state = s;
        }
        let take = state.jobs.len().min(self.max_batch);
        Some(state.jobs.drain(..take).collect())
    }

    /// Flip the queue into drain mode: `submit` starts refusing, and
    /// `next_batch` returns any leftovers immediately, then `None`.
    pub fn drain(&self) {
        self.inner.lock().expect("queue lock poisoned").draining = true;
        self.arrived.notify_all();
    }

    /// Jobs currently waiting (diagnostics).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{Record, Schema};
    use std::sync::mpsc::channel;

    fn test_job(tx: &Sender<(usize, Result<Reply, ServeError>)>, index: usize) -> Job {
        let schema = Arc::new(Schema::new(vec!["a"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["x".into()]),
            Record::new(1, vec!["y".into()]),
        )
        .unwrap();
        Job {
            kind: JobKind::Predict,
            fingerprint: em_eval::pair_fingerprint(&pair),
            pair,
            index,
            reply: tx.clone(),
        }
    }

    #[test]
    fn window_batches_concurrent_submissions() {
        let q = Coalescer::new(Duration::from_millis(50), 16);
        let (tx, _rx) = channel();
        assert!(q.submit(test_job(&tx, 0)).is_ok());
        assert!(q.submit(test_job(&tx, 1)).is_ok());
        assert!(q.submit(test_job(&tx, 2)).is_ok());
        let batch = q.next_batch().unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[2].index, 2);
    }

    #[test]
    fn max_batch_caps_one_flush() {
        let q = Coalescer::new(Duration::from_millis(1), 2);
        let (tx, _rx) = channel();
        for i in 0..5 {
            assert!(q.submit(test_job(&tx, i)).is_ok());
        }
        assert_eq!(q.next_batch().unwrap().len(), 2);
        assert_eq!(q.next_batch().unwrap().len(), 2);
        assert_eq!(q.next_batch().unwrap().len(), 1);
    }

    #[test]
    fn drain_flushes_leftovers_then_ends() {
        let q = Coalescer::new(Duration::from_secs(10), 16);
        let (tx, _rx) = channel();
        assert!(q.submit(test_job(&tx, 0)).is_ok());
        q.drain();
        // Long window must NOT hold the flush open once draining.
        let t0 = Instant::now();
        assert_eq!(q.next_batch().unwrap().len(), 1);
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(q.next_batch().is_none());
        assert!(q.submit(test_job(&tx, 1)).is_err());
    }

    #[test]
    fn next_batch_wakes_on_drain_while_blocked() {
        let q = Arc::new(Coalescer::new(Duration::from_millis(1), 4));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.next_batch());
        std::thread::sleep(Duration::from_millis(20));
        q.drain();
        assert!(waiter.join().unwrap().is_none());
    }
}
