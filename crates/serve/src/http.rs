//! In-tree HTTP/1.1: a defensive request/response parser over any
//! [`Read`] stream, plus the response writer.
//!
//! The parser is the server's exposure to arbitrary network bytes, so it
//! is written to a strict contract (property-tested in
//! `tests/tests/serve_protocol.rs`):
//!
//! * **Never panics, never hangs** on any byte sequence. Reads are
//!   bounded by [`Limits`] (head and body caps) and the underlying
//!   stream's read timeout; every failure mode maps to a typed
//!   [`ParseError`] the server turns into a clean 4xx close.
//! * **Fragmentation-invariant**: the result of parsing a byte stream is
//!   identical whether the transport delivers it in one read or one byte
//!   at a time (TCP makes no framing promises).
//! * **Keep-alive safe**: bytes beyond the current request (pipelined
//!   requests) stay buffered for the next [`Connection::read_request`]
//!   call.
//!
//! Scope: `GET`/`POST` with `Content-Length` bodies — exactly what the
//! explanation service speaks. `Transfer-Encoding` is rejected rather
//! than half-implemented.

use std::io::{ErrorKind, Read, Write};

/// Byte caps enforced while parsing one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum bytes of request line + headers (including terminator).
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Why a message could not be parsed. Every variant is a *clean* outcome:
/// the server maps it to a 4xx response and/or a connection close, never
/// a panic or a wedged thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Syntactically invalid message (400).
    Malformed(&'static str),
    /// Head or declared body size exceeds [`Limits`] (413).
    TooLarge(&'static str),
    /// Peer closed the stream mid-message.
    Truncated,
    /// The read timed out after the message started arriving (408).
    TimedOut,
    /// The read timed out with no bytes of a new message — an idle
    /// keep-alive connection, closed without a response.
    TimedOutIdle,
    /// Transport error; the connection is unusable.
    Io(ErrorKind),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(what) => write!(f, "malformed message: {what}"),
            ParseError::TooLarge(what) => write!(f, "{what} exceeds limit"),
            ParseError::Truncated => write!(f, "peer closed mid-message"),
            ParseError::TimedOut => write!(f, "read timed out mid-message"),
            ParseError::TimedOutIdle => write!(f, "idle timeout"),
            ParseError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// `HTTP/1.0` or `HTTP/1.1` (anything else is [`ParseError::Malformed`]).
    pub version: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header value of `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after responding:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an
    /// explicit `Connection` header overrides either default.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v == "close" => false,
            Some(v) if v == "keep-alive" => true,
            _ => self.version == "HTTP/1.1",
        }
    }
}

/// One parsed HTTP response (the client side — `load_gen` and the
/// integration tests read server responses through this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A buffered HTTP connection over any [`Read`] transport. Owns the
/// unconsumed byte backlog so pipelined messages survive across calls.
pub struct Connection<S> {
    stream: S,
    buf: Vec<u8>,
    pos: usize,
}

impl<S> Connection<S> {
    pub fn new(stream: S) -> Self {
        Connection {
            stream,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The underlying transport (for writing responses/requests).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl<S: Read> Connection<S> {
    /// Pull more bytes from the transport into the backlog. `Ok(0)`
    /// means EOF; timeouts and transport failures map to [`ParseError`]
    /// (idle-vs-mid-message is decided by the caller).
    fn fill(&mut self) -> Result<usize, ParseError> {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(n);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(ParseError::TimedOut)
                }
                Err(e) => return Err(ParseError::Io(e.kind())),
            }
        }
    }

    /// Accumulate bytes until a blank line ends the head; returns the
    /// head text (terminator included in the consumed range). `Ok(None)`
    /// is a clean EOF before any byte of a new message.
    fn read_head(&mut self, limits: &Limits) -> Result<Option<String>, ParseError> {
        loop {
            if let Some(end) = find_head_end(&self.buf[self.pos..]) {
                if end > limits.max_head_bytes {
                    return Err(ParseError::TooLarge("message head"));
                }
                let head = &self.buf[self.pos..self.pos + end];
                let text = std::str::from_utf8(head)
                    .map_err(|_| ParseError::Malformed("non-UTF-8 head"))?
                    .to_string();
                self.pos += end;
                return Ok(Some(text));
            }
            if self.buffered() > limits.max_head_bytes {
                return Err(ParseError::TooLarge("message head"));
            }
            match self.fill() {
                Ok(0) => {
                    return if self.buffered() == 0 {
                        Ok(None)
                    } else {
                        Err(ParseError::Truncated)
                    }
                }
                Ok(_) => continue,
                Err(ParseError::TimedOut) if self.buffered() == 0 => {
                    return Err(ParseError::TimedOutIdle)
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read exactly `len` body bytes (already capped by the caller).
    fn read_body(&mut self, len: usize) -> Result<Vec<u8>, ParseError> {
        while self.buffered() < len {
            match self.fill() {
                Ok(0) => return Err(ParseError::Truncated),
                Ok(_) => continue,
                Err(e) => return Err(e),
            }
        }
        let body = self.buf[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(body)
    }

    /// Parse one request from the stream. `Ok(None)` is a clean close
    /// between requests (keep-alive peer went away).
    pub fn read_request(&mut self, limits: &Limits) -> Result<Option<Request>, ParseError> {
        let Some(head) = self.read_head(limits)? else {
            return Ok(None);
        };
        let mut lines = head_lines(&head);
        let request_line = lines
            .next()
            .ok_or(ParseError::Malformed("empty request line"))?;
        let (method, path, version) = parse_request_line(request_line)?;
        let headers = parse_headers(lines)?;
        let body_len = content_length(&headers, limits)?;
        let body = self.read_body(body_len)?;
        Ok(Some(Request {
            method,
            path,
            version,
            headers,
            body,
        }))
    }

    /// Parse one response from the stream (client side).
    pub fn read_response(&mut self, limits: &Limits) -> Result<Response, ParseError> {
        let Some(head) = self.read_head(limits)? else {
            return Err(ParseError::Truncated);
        };
        let mut lines = head_lines(&head);
        let status_line = lines
            .next()
            .ok_or(ParseError::Malformed("empty status line"))?;
        let status = parse_status_line(status_line)?;
        let headers = parse_headers(lines)?;
        let body_len = content_length(&headers, limits)?;
        let body = self.read_body(body_len)?;
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

/// Index one past the head terminator (`\r\n\r\n`, `\n\n`, or the mixed
/// `\n\r\n`), or `None` if the head is still incomplete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    for i in 0..buf.len() {
        if buf[i] != b'\n' {
            continue;
        }
        if buf.get(i + 1) == Some(&b'\n') {
            return Some(i + 2);
        }
        if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
            return Some(i + 3);
        }
    }
    None
}

/// Head lines without their terminators, blank terminator lines dropped.
fn head_lines(head: &str) -> impl Iterator<Item = &str> {
    head.split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .filter(|l| !l.is_empty())
}

fn parse_request_line(line: &str) -> Result<(String, String, String), ParseError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed(
            "request line is not METHOD SP PATH SP VERSION",
        ));
    };
    if method.is_empty() || method.len() > 16 || !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("bad method token"));
    }
    if !path.starts_with('/') || path.chars().any(|c| c.is_ascii_control()) {
        return Err(ParseError::Malformed("bad request path"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    Ok((method.to_string(), path.to_string(), version.to_string()))
}

fn parse_status_line(line: &str) -> Result<u16, ParseError> {
    let mut parts = line.splitn(3, ' ');
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(ParseError::Malformed("status line is not VERSION SP CODE"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    code.parse::<u16>()
        .ok()
        .filter(|c| (100..600).contains(c))
        .ok_or(ParseError::Malformed("bad status code"))
}

const MAX_HEADERS: usize = 100;

fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(String, String)>, ParseError> {
    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooLarge("header count"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed("header line without a colon"));
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(ParseError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

/// Resolve the body length: absent → 0, duplicated-and-conflicting or
/// non-numeric → malformed, past the cap → too large. `Transfer-Encoding`
/// is rejected outright (this parser only frames by `Content-Length`).
fn content_length(headers: &[(String, String)], limits: &Limits) -> Result<usize, ParseError> {
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(ParseError::Malformed("transfer-encoding unsupported"));
    }
    let mut declared: Option<usize> = None;
    for (name, value) in headers {
        if name != "content-length" {
            continue;
        }
        let n: usize = value
            .parse()
            .map_err(|_| ParseError::Malformed("bad content-length"))?;
        if declared.is_some_and(|prev| prev != n) {
            return Err(ParseError::Malformed("conflicting content-length"));
        }
        declared = Some(n);
    }
    let len = declared.unwrap_or(0);
    if len > limits.max_body_bytes {
        return Err(ParseError::TooLarge("request body"));
    }
    Ok(len)
}

/// Canonical reason phrase of the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one complete response (`Content-Length` framing; `Connection:
/// close` advertised when `close`).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Serialise one request (the client side of the protocol).
pub fn write_request(
    w: &mut impl Write,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len(),
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        Connection::new(Cursor::new(bytes.to_vec())).read_request(&Limits::default())
    }

    #[test]
    fn parses_a_simple_post() {
        let req = parse(b"POST /predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive());
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse(b"GET /health HTTP/1.1\nHost: x\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/health");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn clean_eof_before_any_byte_is_none() {
        assert_eq!(parse(b""), Ok(None));
    }

    #[test]
    fn eof_mid_head_is_truncated() {
        assert_eq!(parse(b"POST /x HTT"), Err(ParseError::Truncated));
    }

    #[test]
    fn eof_mid_body_is_truncated() {
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nab"),
            Err(ParseError::Truncated)
        );
    }

    #[test]
    fn oversized_declared_body_is_too_large() {
        let limits = Limits {
            max_body_bytes: 8,
            ..Limits::default()
        };
        let err = Connection::new(Cursor::new(
            b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n".to_vec(),
        ))
        .read_request(&limits)
        .unwrap_err();
        assert_eq!(err, ParseError::TooLarge("request body"));
    }

    #[test]
    fn unterminated_head_past_cap_is_too_large() {
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let bytes = vec![b'A'; 200];
        let err = Connection::new(Cursor::new(bytes))
            .read_request(&limits)
            .unwrap_err();
        assert_eq!(err, ParseError::TooLarge("message head"));
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panicked() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"get /lower HTTP/1.1\r\n\r\n",
            b"POST nopath HTTP/1.1\r\n\r\n",
            b"POST /x HTTP/2.0\r\n\r\n",
            b"POST /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: moo\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"POST /x HTTP/1.1 extra\r\n\r\n",
            b"\xff\xfe\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(ParseError::Malformed(_))),
                "{bad:?} should be malformed"
            );
        }
    }

    #[test]
    fn pipelined_requests_stay_buffered() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut conn = Connection::new(Cursor::new(two.to_vec()));
        let a = conn.read_request(&Limits::default()).unwrap().unwrap();
        let b = conn.read_request(&Limits::default()).unwrap().unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert_eq!(conn.read_request(&Limits::default()), Ok(None));
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "application/json", b"{\"ok\":true}", false).unwrap();
        let resp = Connection::new(Cursor::new(wire))
            .read_response(&Limits::default())
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"ok\":true}");
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
    }
}
