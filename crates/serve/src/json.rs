//! Minimal in-tree JSON: a recursive-descent parser with a hard depth
//! cap (adversarial nesting must error, not blow the stack) and the
//! string/number escapes the service needs. The emitter side mirrors the
//! conventions of `crew_core::report` (finite floats via `{v}`,
//! non-finite as `null`).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse failure: byte offset into the input plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Maximum nesting depth accepted. Deeper documents are rejected with an
/// error rather than risking recursion past the stack guard.
const MAX_DEPTH: usize = 64;

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require a paired \uXXXX low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate escape")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

/// Escape a string for embedding in a JSON document (quotes excluded).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Emit a float the way the repo's artifact writers do: `{v}` when
/// finite, `null` otherwise.
pub fn num_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"pairs":[{"left":["a b","c"],"right":["d",""]}],"n":1.5e2}"#;
        let v = parse_json(doc).unwrap();
        let pairs = v.get("pairs").unwrap().as_array().unwrap();
        let left = pairs[0].get("left").unwrap().as_array().unwrap();
        assert_eq!(left[0].as_str(), Some("a b"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(150.0));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse_json(r#""a\"b\\c\nd\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndé😀"));
        let escaped = escape_json("a\"b\\c\nd");
        assert_eq!(
            parse_json(&format!("\"{escaped}\"")).unwrap().as_str(),
            Some("a\"b\\c\nd")
        );
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = parse_json(&deep).unwrap_err();
        assert_eq!(err.message, "nesting too deep");
    }

    #[test]
    fn rejects_trailing_garbage_and_malformed_docs() {
        for bad in [
            "{} x",
            "{",
            "[1,",
            "nul",
            "\"unterminated",
            "{\"a\" 1}",
            "1e999",
            "--5",
            "\"\\u12\"",
            "\"\\ud800\"",
            "",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn num_json_handles_non_finite() {
        assert_eq!(num_json(0.5), "0.5");
        assert_eq!(num_json(f64::NAN), "null");
        assert_eq!(num_json(f64::INFINITY), "null");
    }
}
