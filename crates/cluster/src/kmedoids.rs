//! K-medoids (PAM-style) clustering — the flat-clustering baseline used in
//! the CREW ablation (agglomerative-with-constraints vs plain k-medoids).

use crate::ClusterError;
use em_rngs::rngs::StdRng;
use em_rngs::seq::SliceRandom;
use em_rngs::SeedableRng;

/// Result of a k-medoids run.
#[derive(Debug, Clone)]
pub struct KMedoids {
    /// Item index of each medoid.
    pub medoids: Vec<usize>,
    /// Cluster label of each item (index into `medoids`).
    pub labels: Vec<usize>,
    /// Total distance of items to their medoid.
    pub cost: f64,
}

/// Run PAM-style k-medoids: greedy build + swap refinement until no swap
/// improves the cost (capped at `max_iter` sweeps).
pub fn kmedoids(
    distances: &em_linalg::Matrix,
    k: usize,
    seed: u64,
    max_iter: usize,
) -> Result<KMedoids, ClusterError> {
    crate::agglomerative::validate_distances(distances)?;
    let n = distances.rows();
    if k == 0 || k > n {
        return Err(ClusterError::InvalidK { k, min: 1, max: n });
    }

    // Init: random distinct medoids.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut medoids: Vec<usize> = order[..k].to_vec();
    medoids.sort_unstable();

    let assign = |medoids: &[usize]| -> (Vec<usize>, f64) {
        let mut labels = vec![0usize; n];
        let mut cost = 0.0;
        for i in 0..n {
            let mut best = (0usize, f64::INFINITY);
            for (c, &m) in medoids.iter().enumerate() {
                let d = distances[(i, m)];
                if d < best.1 {
                    best = (c, d);
                }
            }
            labels[i] = best.0;
            cost += best.1;
        }
        (labels, cost)
    };

    let (mut labels, mut cost) = assign(&medoids);
    for _ in 0..max_iter {
        let mut improved = false;
        for c in 0..k {
            for candidate in 0..n {
                if medoids.contains(&candidate) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[c] = candidate;
                let (tl, tc) = assign(&trial);
                if tc + 1e-12 < cost {
                    medoids = trial;
                    labels = tl;
                    cost = tc;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(KMedoids {
        medoids,
        labels,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_linalg::Matrix;

    fn blobs() -> Matrix {
        let pts: [f64; 6] = [0.0, 0.2, 0.4, 9.0, 9.2, 9.4];
        Matrix::from_fn(6, 6, |i, j| (pts[i] - pts[j]).abs())
    }

    #[test]
    fn recovers_two_blobs() {
        let r = kmedoids(&blobs(), 2, 1, 50).unwrap();
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[1], r.labels[2]);
        assert_eq!(r.labels[3], r.labels[4]);
        assert_ne!(r.labels[0], r.labels[3]);
        assert_eq!(r.medoids.len(), 2);
    }

    #[test]
    fn cost_decreases_with_more_clusters() {
        let d = blobs();
        let c1 = kmedoids(&d, 1, 1, 50).unwrap().cost;
        let c2 = kmedoids(&d, 2, 1, 50).unwrap().cost;
        let c6 = kmedoids(&d, 6, 1, 50).unwrap().cost;
        assert!(c2 < c1);
        assert!(c6 <= c2);
        assert_eq!(c6, 0.0);
    }

    #[test]
    fn invalid_k_rejected() {
        let d = blobs();
        assert!(kmedoids(&d, 0, 1, 10).is_err());
        assert!(kmedoids(&d, 7, 1, 10).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = blobs();
        let a = kmedoids(&d, 2, 5, 50).unwrap();
        let b = kmedoids(&d, 2, 5, 50).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.medoids, b.medoids);
    }

    #[test]
    fn medoids_are_members_of_their_cluster() {
        let r = kmedoids(&blobs(), 2, 3, 50).unwrap();
        for (c, &m) in r.medoids.iter().enumerate() {
            assert_eq!(r.labels[m], c);
        }
    }
}
