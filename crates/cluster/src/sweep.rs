//! Incremental K-sweep over one dendrogram.
//!
//! CREW's model selection cuts the same dendrogram at every K in
//! `[k_lo, k_hi]` and scores each cut's silhouette. Done naively that is
//! one union-find replay plus one O(n²·k) silhouette recomputation per K.
//! This module replays the merge sequence **once**, from the finest cut
//! downward: consecutive cuts differ by exactly one merge, so the
//! per-item per-cluster distance sums that silhouette needs can be
//! maintained by folding two columns together — O(n) per K after a
//! single O(n²) initialisation.
//!
//! Labels are extracted with the same first-appearance renumbering as
//! [`Dendrogram::cut`], so `sweep_cuts(..)[k - k_lo].labels ==
//! dendrogram.cut(k)` exactly; silhouettes match the reference
//! [`silhouette`](crate::quality::silhouette) up to float associativity
//! (the accumulators are partial sums folded in merge order).

use crate::agglomerative::{validate_distances, Dendrogram};
use crate::ClusterError;

/// One cut of the sweep: the partition at `k` and its silhouette score.
#[derive(Debug, Clone)]
pub struct KCut {
    pub k: usize,
    /// Per-item labels in `0..k`, first-appearance renumbered — identical
    /// to `Dendrogram::cut(k)`.
    pub labels: Vec<usize>,
    /// Mean silhouette of this partition (0.0 where undefined).
    pub silhouette: f64,
}

/// Cut `dendrogram` at every `k` in `[k_lo, k_hi]`, scoring each cut's
/// silhouette incrementally. Returns cuts in ascending-`k` order.
///
/// # Errors
/// Rejects malformed distance matrices, a matrix whose size differs from
/// the dendrogram's item count, and `k` bounds outside
/// `[dendrogram.min_clusters(), dendrogram.max_clusters()]`.
pub fn sweep_cuts(
    dendrogram: &Dendrogram,
    distances: &em_linalg::Matrix,
    k_lo: usize,
    k_hi: usize,
) -> Result<Vec<KCut>, ClusterError> {
    validate_distances(distances)?;
    let n = dendrogram.n_items();
    if distances.rows() != n {
        return Err(ClusterError::LabelLengthMismatch {
            expected: n,
            got: distances.rows(),
        });
    }
    let (min_k, max_k) = (dendrogram.min_clusters(), dendrogram.max_clusters());
    for k in [k_lo, k_hi] {
        if k == 0 || k < min_k || k > max_k {
            return Err(ClusterError::InvalidK {
                k,
                min: min_k,
                max: max_k,
            });
        }
    }
    if k_lo > k_hi {
        return Err(ClusterError::InvalidK {
            k: k_lo,
            min: min_k,
            max: k_hi,
        });
    }

    let n_initial = dendrogram.n_initial();
    let merges = dendrogram.merges();

    // Member lists per merge-tree node (leaves `0..n_initial`, internal
    // nodes `n_initial + step`). Nodes are emptied as they merge.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_initial + merges.len()];
    for (item, &c) in dendrogram.initial().iter().enumerate() {
        members[c].push(item);
    }
    let mut alive = vec![false; n_initial + merges.len()];
    alive[..n_initial].iter_mut().for_each(|a| *a = true);

    // Fast-forward to the finest requested cut: k_hi clusters remain
    // after the first `n_initial - k_hi` merges.
    let pre_applied = n_initial - k_hi;
    for (step, m) in merges.iter().take(pre_applied).enumerate() {
        let mut merged = std::mem::take(&mut members[m.a]);
        merged.append(&mut std::mem::take(&mut members[m.b]));
        let new_id = n_initial + step;
        members[new_id] = merged;
        alive[m.a] = false;
        alive[m.b] = false;
        alive[new_id] = true;
    }

    // Assign each of the k_hi live clusters a fixed column slot.
    let stride = k_hi;
    let mut slot_of_node = vec![usize::MAX; n_initial + merges.len()];
    let mut slot_size = Vec::with_capacity(stride);
    let mut slot_alive = Vec::with_capacity(stride);
    let mut item_slot = vec![usize::MAX; n];
    for node in 0..n_initial + merges.len() {
        if !alive[node] {
            continue;
        }
        let slot = slot_size.len();
        slot_of_node[node] = slot;
        slot_size.push(members[node].len());
        slot_alive.push(true);
        for &item in &members[node] {
            item_slot[item] = slot;
        }
    }
    debug_assert_eq!(slot_size.len(), k_hi);

    // Silhouette accumulators: sums[i*stride + s] = Σ_{j in slot s, j≠i}
    // d(i, j), built once at the finest cut in ascending-j order.
    let mut sums = vec![0.0f64; n * stride];
    for i in 0..n {
        let row = distances.row(i);
        let acc = &mut sums[i * stride..(i + 1) * stride];
        for (j, &d) in row.iter().enumerate() {
            if j != i {
                acc[item_slot[j]] += d;
            }
        }
    }

    let silhouette_now = |item_slot: &[usize],
                          slot_size: &[usize],
                          slot_alive: &[bool],
                          sums: &[f64],
                          k: usize|
     -> f64 {
        // Mirrors `quality::silhouette` exactly: degenerate partitions
        // score 0, singletons count with s = 0, and a zero max(a, b)
        // contributes nothing.
        if k <= 1 || k >= n {
            return 0.0;
        }
        let mut total = 0.0;
        let mut counted = 0usize;
        for i in 0..n {
            let li = item_slot[i];
            if slot_size[li] <= 1 {
                counted += 1;
                continue;
            }
            let row = &sums[i * stride..(i + 1) * stride];
            let a = row[li] / (slot_size[li] - 1) as f64;
            let mut b = f64::INFINITY;
            for s in 0..stride {
                if s == li || !slot_alive[s] || slot_size[s] == 0 {
                    continue;
                }
                b = b.min(row[s] / slot_size[s] as f64);
            }
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
            counted += 1;
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    };

    let labels_now = |item_slot: &[usize]| -> Vec<usize> {
        // First-appearance renumbering in item order — the same rule
        // `Dendrogram::cut` applies to union-find roots.
        let mut label_of_slot = vec![usize::MAX; stride];
        let mut next = 0usize;
        let mut labels = Vec::with_capacity(n);
        for &s in item_slot {
            if label_of_slot[s] == usize::MAX {
                label_of_slot[s] = next;
                next += 1;
            }
            labels.push(label_of_slot[s]);
        }
        labels
    };

    // Walk K downward, applying one merge between consecutive cuts.
    let mut cuts = Vec::with_capacity(k_hi - k_lo + 1);
    for k in (k_lo..=k_hi).rev() {
        cuts.push(KCut {
            k,
            labels: labels_now(&item_slot),
            silhouette: silhouette_now(&item_slot, &slot_size, &slot_alive, &sums, k),
        });
        if k == k_lo {
            break;
        }
        let m = &merges[n_initial - k];
        let (sa, sb) = (slot_of_node[m.a], slot_of_node[m.b]);
        let new_id = n_initial + (n_initial - k);
        slot_of_node[new_id] = sa;
        // Fold slot sb's distance-sum column into sa for every item.
        for i in 0..n {
            let acc = &mut sums[i * stride..(i + 1) * stride];
            acc[sa] += acc[sb];
            acc[sb] = 0.0;
        }
        slot_size[sa] += slot_size[sb];
        slot_size[sb] = 0;
        slot_alive[sb] = false;
        let mut merged = std::mem::take(&mut members[m.a]);
        let moved = std::mem::take(&mut members[m.b]);
        for &item in &moved {
            item_slot[item] = sa;
        }
        merged.extend(moved);
        members[new_id] = merged;
    }
    cuts.reverse();
    Ok(cuts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::{agglomerative, Constraints, Linkage};
    use crate::quality::silhouette;
    use em_linalg::Matrix;

    fn line_distances(pts: &[f64]) -> Matrix {
        Matrix::from_fn(pts.len(), pts.len(), |i, j| (pts[i] - pts[j]).abs())
    }

    #[test]
    fn sweep_matches_per_k_cuts_and_silhouettes() {
        let d = line_distances(&[0.0, 0.1, 0.2, 5.0, 5.1, 9.0, 9.2, 9.4]);
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        let cuts = sweep_cuts(&dg, &d, 1, 8).unwrap();
        assert_eq!(cuts.len(), 8);
        for cut in &cuts {
            assert_eq!(cut.labels, dg.cut(cut.k).unwrap(), "labels at k={}", cut.k);
            let reference = silhouette(&d, &cut.labels).unwrap();
            assert!(
                (cut.silhouette - reference).abs() < 1e-9,
                "silhouette at k={}: sweep {} vs reference {}",
                cut.k,
                cut.silhouette,
                reference
            );
        }
    }

    #[test]
    fn sweep_respects_constraints() {
        let d = line_distances(&[0.0, 0.1, 5.0, 5.1, 9.0]);
        let constraints = Constraints {
            must_link: vec![(0, 4)],
            cannot_link: vec![(1, 2)],
        };
        let dg = agglomerative(&d, Linkage::Average, &constraints).unwrap();
        let (lo, hi) = (dg.min_clusters(), dg.max_clusters());
        let cuts = sweep_cuts(&dg, &d, lo, hi).unwrap();
        for cut in &cuts {
            assert_eq!(cut.labels, dg.cut(cut.k).unwrap());
            assert_eq!(cut.labels[0], cut.labels[4], "must-link at k={}", cut.k);
            assert_ne!(cut.labels[1], cut.labels[2], "cannot-link at k={}", cut.k);
        }
    }

    #[test]
    fn sub_range_sweeps_work() {
        let d = line_distances(&[0.0, 1.0, 2.0, 6.0, 7.0, 8.0]);
        let dg = agglomerative(&d, Linkage::Complete, &Constraints::none()).unwrap();
        let cuts = sweep_cuts(&dg, &d, 2, 4).unwrap();
        assert_eq!(cuts.iter().map(|c| c.k).collect::<Vec<_>>(), vec![2, 3, 4]);
        for cut in &cuts {
            assert_eq!(cut.labels, dg.cut(cut.k).unwrap());
        }
    }

    #[test]
    fn invalid_ranges_are_rejected() {
        let d = line_distances(&[0.0, 1.0, 2.0]);
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        assert!(sweep_cuts(&dg, &d, 0, 2).is_err());
        assert!(sweep_cuts(&dg, &d, 1, 4).is_err());
        assert!(sweep_cuts(&dg, &d, 3, 2).is_err());
        let wrong_size = line_distances(&[0.0, 1.0]);
        assert!(sweep_cuts(&dg, &wrong_size, 1, 2).is_err());
    }

    #[test]
    fn single_k_sweep_is_one_cut() {
        let d = line_distances(&[0.0, 0.1, 4.0, 4.1]);
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        let cuts = sweep_cuts(&dg, &d, 2, 2).unwrap();
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].labels, dg.cut(2).unwrap());
    }
}
