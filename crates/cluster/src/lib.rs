//! # em-cluster
//!
//! Clustering substrate for CREW: constrained agglomerative hierarchical
//! clustering over precomputed distance matrices (with must-link /
//! cannot-link support and K-cuts of one dendrogram), a k-medoids baseline,
//! and cluster-quality scores (silhouette, cohesion).
//!
//! ```
//! use em_cluster::{agglomerative, Constraints, Linkage};
//! use em_linalg::Matrix;
//! let pts: [f64; 4] = [0.0, 0.1, 5.0, 5.1];
//! let d = Matrix::from_fn(4, 4, |i, j| (pts[i] - pts[j]).abs());
//! let dendrogram = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
//! let labels = dendrogram.cut(2).unwrap();
//! assert_eq!(labels[0], labels[1]);
//! assert_ne!(labels[0], labels[2]);
//! ```

// Index-based loops are kept where they mirror the textbook formulation
// of the numeric kernels; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
pub mod agglomerative;
pub mod cophenetic;
pub mod kmedoids;
pub mod quality;
pub mod sweep;

pub use agglomerative::{agglomerative, Constraints, Dendrogram, Linkage, Merge};
pub use cophenetic::{cophenetic_correlation, cophenetic_distances};
pub use kmedoids::{kmedoids, KMedoids};
pub use quality::{
    adjusted_rand_index, groups_from_labels, mean_intra_cluster_distance, silhouette,
};
pub use sweep::{sweep_cuts, KCut};

/// Errors from the clustering substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Distance matrix was not square.
    NotSquare { rows: usize, cols: usize },
    /// Empty distance matrix.
    Empty,
    /// Diagonal entry was non-zero.
    NonZeroDiagonal { index: usize, value: f64 },
    /// Negative or non-finite distance.
    InvalidDistance { i: usize, j: usize, value: f64 },
    /// Matrix was not symmetric.
    Asymmetric { i: usize, j: usize },
    /// Requested cluster count outside the achievable range.
    InvalidK { k: usize, min: usize, max: usize },
    /// A constraint referenced an item outside the matrix.
    ConstraintOutOfRange { index: usize, n: usize },
    /// Must-link chain connects a cannot-link pair.
    ConflictingConstraints { a: usize, b: usize },
    /// Label vector length does not match the matrix.
    LabelLengthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NotSquare { rows, cols } => {
                write!(f, "distance matrix must be square, got {rows}x{cols}")
            }
            ClusterError::Empty => write!(f, "distance matrix is empty"),
            ClusterError::NonZeroDiagonal { index, value } => {
                write!(f, "diagonal entry {index} must be zero, got {value}")
            }
            ClusterError::InvalidDistance { i, j, value } => {
                write!(f, "invalid distance at ({i},{j}): {value}")
            }
            ClusterError::Asymmetric { i, j } => {
                write!(f, "distance matrix asymmetric at ({i},{j})")
            }
            ClusterError::InvalidK { k, min, max } => {
                write!(f, "k={k} outside achievable range [{min},{max}]")
            }
            ClusterError::ConstraintOutOfRange { index, n } => {
                write!(
                    f,
                    "constraint references item {index} but only {n} items exist"
                )
            }
            ClusterError::ConflictingConstraints { a, b } => {
                write!(
                    f,
                    "items {a} and {b} are both must-linked and cannot-linked"
                )
            }
            ClusterError::LabelLengthMismatch { expected, got } => {
                write!(f, "expected {expected} labels, got {got}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod proptests {
    use super::*;
    use propcheck::prelude::*;

    fn random_distance_matrix(n: usize, seed: u64) -> em_linalg::Matrix {
        use em_rngs::{Rng, SeedableRng};
        let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
        // Build from random points on a line so the matrix is a true metric.
        let pts: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        em_linalg::Matrix::from_fn(n, n, |i, j| (pts[i] - pts[j]).abs())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn every_cut_is_a_partition(n in 2usize..12, seed in 0u64..200) {
            let d = random_distance_matrix(n, seed);
            let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
            for k in 1..=n {
                let labels = dg.cut(k).unwrap();
                prop_assert_eq!(labels.len(), n);
                let distinct: std::collections::HashSet<_> = labels.iter().collect();
                prop_assert_eq!(distinct.len(), k);
                // Labels are compact 0..k
                prop_assert!(labels.iter().all(|&l| l < k));
            }
        }

        #[test]
        fn cuts_are_nested(n in 3usize..10, seed in 0u64..200) {
            // Refining a cut never splits previously-separated items back together:
            // items together at k+1 clusters stay together at k clusters.
            let d = random_distance_matrix(n, seed);
            let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
            for k in 1..n {
                let coarse = dg.cut(k).unwrap();
                let fine = dg.cut(k + 1).unwrap();
                for i in 0..n {
                    for j in 0..n {
                        if fine[i] == fine[j] {
                            prop_assert_eq!(coarse[i], coarse[j]);
                        }
                    }
                }
            }
        }

        #[test]
        fn kmedoids_labels_valid(n in 2usize..10, k in 1usize..5, seed in 0u64..100) {
            let k = k.min(n);
            let d = random_distance_matrix(n, seed);
            let r = kmedoids(&d, k, seed, 20).unwrap();
            prop_assert_eq!(r.labels.len(), n);
            prop_assert!(r.labels.iter().all(|&l| l < k));
            prop_assert!(r.cost >= 0.0);
        }

        #[test]
        fn silhouette_always_bounded(n in 3usize..10, seed in 0u64..100) {
            let d = random_distance_matrix(n, seed);
            let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
            for k in 2..n {
                let labels = dg.cut(k).unwrap();
                let s = silhouette(&d, &labels).unwrap();
                prop_assert!((-1.0..=1.0).contains(&s), "k={} s={}", k, s);
            }
        }
    }
}
