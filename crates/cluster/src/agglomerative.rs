//! Constrained agglomerative hierarchical clustering over a precomputed
//! distance matrix.
//!
//! CREW clusters the words of one candidate pair (tens of items), so a
//! straightforward O(n³) implementation with explicit cluster-distance
//! recomputation is both simple and fast enough; what matters is support
//! for must-link/cannot-link constraints and for cutting the same
//! dendrogram at every K.

use crate::ClusterError;

/// Linkage criterion for cluster distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    Single,
    Complete,
    Average,
    /// Ward-like: average linkage weighted by cluster sizes
    /// (`|A||B|/(|A|+|B|) * avg`), favouring balanced merges.
    Ward,
}

/// Pairwise constraints on the clustering.
#[derive(Debug, Clone, Default)]
pub struct Constraints {
    /// Pairs that must end in the same cluster (applied as pre-merges).
    pub must_link: Vec<(usize, usize)>,
    /// Pairs that must never share a cluster (merges joining them are
    /// skipped).
    pub cannot_link: Vec<(usize, usize)>,
}

impl Constraints {
    pub fn none() -> Self {
        Constraints::default()
    }
}

/// One merge step of the dendrogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// Ids of the merged clusters (cluster id = item index for leaves,
    /// `n + step` for internal nodes).
    pub a: usize,
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
}

/// The full merge history; supports cutting at any K.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n_items: usize,
    merges: Vec<Merge>,
    /// Cluster membership produced by must-link pre-merging (before any
    /// distance-based merge). Leaf "clusters" in `merges` refer to these.
    initial: Vec<usize>,
    /// Number of distinct initial clusters.
    n_initial: usize,
}

impl Dendrogram {
    /// Number of clustered items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The merge sequence (shortest-distance first).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Smallest K this dendrogram can be cut at (1 unless cannot-link
    /// constraints prevented full agglomeration).
    pub fn min_clusters(&self) -> usize {
        self.n_initial - self.merges.len()
    }

    /// Largest meaningful K (= number of initial clusters).
    pub fn max_clusters(&self) -> usize {
        self.n_initial
    }

    /// Per-item initial (must-link) cluster ids — the leaves of `merges`.
    pub(crate) fn initial(&self) -> &[usize] {
        &self.initial
    }

    /// Number of distinct initial clusters.
    pub(crate) fn n_initial(&self) -> usize {
        self.n_initial
    }

    /// Cut into exactly `k` clusters. Returns per-item cluster labels in
    /// `0..k` (renumbered compactly in first-appearance order).
    pub fn cut(&self, k: usize) -> Result<Vec<usize>, ClusterError> {
        if k < self.min_clusters() || k > self.max_clusters() || k == 0 {
            return Err(ClusterError::InvalidK {
                k,
                min: self.min_clusters(),
                max: self.max_clusters(),
            });
        }
        // Union-find over initial clusters, replaying merges until k remain.
        let mut parent: Vec<usize> = (0..self.n_initial + self.merges.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let n_merges = self.n_initial - k;
        for (step, m) in self.merges.iter().take(n_merges).enumerate() {
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            let new_id = self.n_initial + step;
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        // Label items through their initial cluster's root. Root ids are
        // dense (`0..n_initial + n_merges`), so a Vec-indexed table beats
        // a HashMap here — this renumbering runs once per K in the model
        // selection sweep.
        let mut label_of_root = vec![usize::MAX; self.n_initial + self.merges.len()];
        let mut next = 0usize;
        let mut labels = Vec::with_capacity(self.n_items);
        for item in 0..self.n_items {
            let root = find(&mut parent, self.initial[item]);
            if label_of_root[root] == usize::MAX {
                label_of_root[root] = next;
                next += 1;
            }
            labels.push(label_of_root[root]);
        }
        debug_assert_eq!(next, k);
        Ok(labels)
    }
}

/// Run constrained agglomerative clustering.
///
/// `distances` must be square, symmetric (within 1e-9) with a zero diagonal.
pub fn agglomerative(
    distances: &em_linalg::Matrix,
    linkage: Linkage,
    constraints: &Constraints,
) -> Result<Dendrogram, ClusterError> {
    let n = distances.rows();
    validate_distances(distances)?;
    for &(a, b) in constraints.must_link.iter().chain(&constraints.cannot_link) {
        if a >= n || b >= n {
            return Err(ClusterError::ConstraintOutOfRange { index: a.max(b), n });
        }
    }

    // Conflicting constraints: a must-link path connecting a cannot-link
    // pair is an error.
    let mut uf: Vec<usize> = (0..n).collect();
    fn find(uf: &mut [usize], mut x: usize) -> usize {
        while uf[x] != x {
            uf[x] = uf[uf[x]];
            x = uf[x];
        }
        x
    }
    for &(a, b) in &constraints.must_link {
        let (ra, rb) = (find(&mut uf, a), find(&mut uf, b));
        if ra != rb {
            uf[ra] = rb;
        }
    }
    for &(a, b) in &constraints.cannot_link {
        if find(&mut uf, a) == find(&mut uf, b) {
            return Err(ClusterError::ConflictingConstraints { a, b });
        }
    }

    // Initial clusters from must-link components, compactly numbered.
    let mut root_to_cluster: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut initial = vec![0usize; n];
    for i in 0..n {
        let r = find(&mut uf, i);
        let next = root_to_cluster.len();
        initial[i] = *root_to_cluster.entry(r).or_insert(next);
    }
    let n_initial = root_to_cluster.len();

    // Active clusters: member item lists. Cluster ids grow past n_initial
    // as merges happen (dendrogram convention).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_initial];
    for (item, &c) in initial.iter().enumerate() {
        members[c].push(item);
    }
    let mut active: Vec<usize> = (0..n_initial).collect(); // indices into `members`/ids
    let mut ids: Vec<usize> = (0..n_initial).collect();

    // Cannot-link lookup at item level.
    let cl: std::collections::HashSet<(usize, usize)> = constraints
        .cannot_link
        .iter()
        .flat_map(|&(a, b)| [(a, b), (b, a)])
        .collect();
    let violates = |ma: &[usize], mb: &[usize]| -> bool {
        ma.iter().any(|&x| mb.iter().any(|&y| cl.contains(&(x, y))))
    };

    // Base cluster-pair statistic for the linkage, computed from item
    // distances once at initialisation and then maintained incrementally
    // with the Lance-Williams recurrences (min / max / size-weighted mean).
    // This keeps the whole agglomeration at O(n²) memory and O(n²) work per
    // merge instead of rescanning member pairs (which is quadratic in
    // cluster size and showed up as the explainer's hotspot on long pairs).
    let base_stat = |ma: &[usize], mb: &[usize]| -> f64 {
        match linkage {
            Linkage::Single => {
                let mut best = f64::INFINITY;
                for &x in ma {
                    for &y in mb {
                        best = best.min(distances[(x, y)]);
                    }
                }
                best
            }
            Linkage::Complete => {
                let mut worst = f64::NEG_INFINITY;
                for &x in ma {
                    for &y in mb {
                        worst = worst.max(distances[(x, y)]);
                    }
                }
                worst
            }
            Linkage::Average | Linkage::Ward => {
                let mut sum = 0.0;
                for &x in ma {
                    for &y in mb {
                        sum += distances[(x, y)];
                    }
                }
                sum / (ma.len() * mb.len()) as f64
            }
        }
    };
    // Ward's merge score is derived from the average statistic and sizes.
    let score_of = |stat: f64, size_a: usize, size_b: usize| -> f64 {
        if linkage == Linkage::Ward {
            let (sa, sb) = (size_a as f64, size_b as f64);
            stat * (sa * sb / (sa + sb))
        } else {
            stat
        }
    };

    // Working statistic matrix over the initial clusters; `slot_of[c]`
    // tracks which matrix slot cluster `c` occupies (slots are reused).
    let mut stat = vec![vec![0.0f64; n_initial]; n_initial];
    for i in 0..n_initial {
        for j in i + 1..n_initial {
            let s = base_stat(&members[i], &members[j]);
            stat[i][j] = s;
            stat[j][i] = s;
        }
    }

    let mut merges = Vec::with_capacity(n_initial.saturating_sub(1));
    loop {
        if active.len() < 2 {
            break;
        }
        // Find the closest admissible pair of active clusters.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..active.len() {
            for j in i + 1..active.len() {
                let (ci, cj) = (active[i], active[j]);
                let d = score_of(stat[ci][cj], members[ci].len(), members[cj].len());
                if best.is_none_or(|(_, _, bd)| d < bd) && !violates(&members[ci], &members[cj]) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, d)) = best else {
            break; // all remaining merges violate cannot-link
        };
        let (ci, cj) = (active[i], active[j]);
        merges.push(Merge {
            a: ids[i],
            b: ids[j],
            distance: d,
        });
        // Lance-Williams update: fold cluster cj's statistics into ci.
        let (na, nb) = (members[ci].len() as f64, members[cj].len() as f64);
        for &ck in &active {
            if ck == ci || ck == cj {
                continue;
            }
            stat[ci][ck] = match linkage {
                Linkage::Single => stat[ci][ck].min(stat[cj][ck]),
                Linkage::Complete => stat[ci][ck].max(stat[cj][ck]),
                Linkage::Average | Linkage::Ward => {
                    (na * stat[ci][ck] + nb * stat[cj][ck]) / (na + nb)
                }
            };
            stat[ck][ci] = stat[ci][ck];
        }
        // Merge members of cj into ci; ci keeps its slot with a fresh id.
        let moved = std::mem::take(&mut members[cj]);
        members[ci].extend(moved);
        let new_id = n_initial + merges.len() - 1;
        active.remove(j);
        ids.remove(j);
        ids[i] = new_id;
    }

    Ok(Dendrogram {
        n_items: n,
        merges,
        initial,
        n_initial,
    })
}

pub(crate) fn validate_distances(d: &em_linalg::Matrix) -> Result<(), ClusterError> {
    let n = d.rows();
    if d.cols() != n {
        return Err(ClusterError::NotSquare {
            rows: d.rows(),
            cols: d.cols(),
        });
    }
    if n == 0 {
        return Err(ClusterError::Empty);
    }
    for i in 0..n {
        if d[(i, i)].abs() > 1e-9 {
            return Err(ClusterError::NonZeroDiagonal {
                index: i,
                value: d[(i, i)],
            });
        }
        for j in 0..n {
            let v = d[(i, j)];
            if !v.is_finite() || v < -1e-12 {
                return Err(ClusterError::InvalidDistance { i, j, value: v });
            }
            if (v - d[(j, i)]).abs() > 1e-9 {
                return Err(ClusterError::Asymmetric { i, j });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_linalg::Matrix;

    /// Two tight groups: {0,1,2} near each other, {3,4} near each other,
    /// far across.
    fn two_blob_distances() -> Matrix {
        let pts: [f64; 5] = [0.0, 0.1, 0.2, 10.0, 10.1];
        Matrix::from_fn(5, 5, |i, j| (pts[i] - pts[j]).abs())
    }

    #[test]
    fn cuts_recover_blobs() {
        let d = two_blob_distances();
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        let labels = dg.cut(2).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn cut_k_equals_n_gives_singletons() {
        let d = two_blob_distances();
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        let labels = dg.cut(5).unwrap();
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn cut_k_one_merges_everything() {
        let d = two_blob_distances();
        let dg = agglomerative(&d, Linkage::Single, &Constraints::none()).unwrap();
        let labels = dg.cut(1).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn invalid_k_is_rejected() {
        let d = two_blob_distances();
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        assert!(dg.cut(0).is_err());
        assert!(dg.cut(6).is_err());
    }

    #[test]
    fn merge_distances_are_monotone_for_average_linkage() {
        let d = two_blob_distances();
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        for w in dg.merges().windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-9);
        }
    }

    #[test]
    fn must_link_forces_items_together() {
        let d = two_blob_distances();
        let constraints = Constraints {
            must_link: vec![(0, 3)],
            cannot_link: vec![],
        };
        let dg = agglomerative(&d, Linkage::Average, &constraints).unwrap();
        for k in dg.min_clusters()..=dg.max_clusters() {
            let labels = dg.cut(k).unwrap();
            assert_eq!(labels[0], labels[3], "must-link violated at k={k}");
        }
    }

    #[test]
    fn cannot_link_keeps_items_apart() {
        let d = two_blob_distances();
        let constraints = Constraints {
            must_link: vec![],
            cannot_link: vec![(0, 1)],
        };
        let dg = agglomerative(&d, Linkage::Average, &constraints).unwrap();
        assert!(dg.min_clusters() >= 2);
        for k in dg.min_clusters()..=dg.max_clusters() {
            let labels = dg.cut(k).unwrap();
            assert_ne!(labels[0], labels[1], "cannot-link violated at k={k}");
        }
    }

    #[test]
    fn conflicting_constraints_error() {
        let d = two_blob_distances();
        let constraints = Constraints {
            must_link: vec![(0, 1), (1, 2)],
            cannot_link: vec![(0, 2)],
        };
        assert!(matches!(
            agglomerative(&d, Linkage::Average, &constraints),
            Err(ClusterError::ConflictingConstraints { .. })
        ));
    }

    #[test]
    fn out_of_range_constraint_errors() {
        let d = two_blob_distances();
        let constraints = Constraints {
            must_link: vec![(0, 99)],
            cannot_link: vec![],
        };
        assert!(matches!(
            agglomerative(&d, Linkage::Average, &constraints),
            Err(ClusterError::ConstraintOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_malformed_matrices() {
        assert!(
            agglomerative(&Matrix::zeros(0, 0), Linkage::Average, &Constraints::none()).is_err()
        );
        assert!(
            agglomerative(&Matrix::zeros(2, 3), Linkage::Average, &Constraints::none()).is_err()
        );
        let mut bad_diag = Matrix::zeros(2, 2);
        bad_diag[(0, 0)] = 1.0;
        assert!(agglomerative(&bad_diag, Linkage::Average, &Constraints::none()).is_err());
        let mut asym = Matrix::zeros(2, 2);
        asym[(0, 1)] = 1.0;
        assert!(agglomerative(&asym, Linkage::Average, &Constraints::none()).is_err());
        let mut neg = Matrix::zeros(2, 2);
        neg[(0, 1)] = -1.0;
        neg[(1, 0)] = -1.0;
        assert!(agglomerative(&neg, Linkage::Average, &Constraints::none()).is_err());
    }

    #[test]
    fn single_item_dendrogram() {
        let d = Matrix::zeros(1, 1);
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        assert_eq!(dg.min_clusters(), 1);
        assert_eq!(dg.cut(1).unwrap(), vec![0]);
    }

    #[test]
    fn linkages_agree_on_clear_structure() {
        let d = two_blob_distances();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let dg = agglomerative(&d, linkage, &Constraints::none()).unwrap();
            let labels = dg.cut(2).unwrap();
            assert_eq!(labels[0], labels[2], "{linkage:?}");
            assert_ne!(labels[0], labels[4], "{linkage:?}");
        }
    }

    #[test]
    fn ties_are_broken_deterministically() {
        // Equilateral: all distances equal; result must be stable run-to-run.
        let d = Matrix::from_fn(4, 4, |i, j| if i == j { 0.0 } else { 1.0 });
        let a = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        let b = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        assert_eq!(a.merges(), b.merges());
    }
}
