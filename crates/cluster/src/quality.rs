//! Cluster quality scores: silhouette (used by CREW's K selection
//! tie-break) and simple partition utilities.

use crate::ClusterError;

/// Mean silhouette coefficient of a labelled partition under a distance
/// matrix. Returns 0.0 when every item is alone or all items share one
/// cluster (silhouette is undefined there; 0 is the neutral value).
pub fn silhouette(distances: &em_linalg::Matrix, labels: &[usize]) -> Result<f64, ClusterError> {
    crate::agglomerative::validate_distances(distances)?;
    let n = distances.rows();
    if labels.len() != n {
        return Err(ClusterError::LabelLengthMismatch {
            expected: n,
            got: labels.len(),
        });
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if k <= 1 || k >= n {
        return Ok(0.0);
    }
    let mut cluster_sizes = vec![0usize; k];
    for &l in labels {
        cluster_sizes[l] += 1;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        let li = labels[i];
        if cluster_sizes[li] <= 1 {
            // Singleton: conventionally s(i) = 0.
            counted += 1;
            continue;
        }
        // a(i): mean intra-cluster distance.
        // b(i): min over other clusters of mean distance.
        let mut sums = vec![0.0; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[labels[j]] += distances[(i, j)];
        }
        let a = sums[li] / (cluster_sizes[li] - 1) as f64;
        let mut b = f64::INFINITY;
        for (c, &size) in cluster_sizes.iter().enumerate() {
            if c == li || size == 0 {
                continue;
            }
            b = b.min(sums[c] / size as f64);
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
        counted += 1;
    }
    Ok(if counted == 0 {
        0.0
    } else {
        total / counted as f64
    })
}

/// Group item indices by label: `result[c]` lists members of cluster `c`.
pub fn groups_from_labels(labels: &[usize]) -> Vec<Vec<usize>> {
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups = vec![Vec::new(); k];
    for (i, &l) in labels.iter().enumerate() {
        groups[l].push(i);
    }
    groups
}

/// Mean pairwise distance inside each cluster, averaged over clusters with
/// ≥ 2 members (cohesion; lower is tighter).
pub fn mean_intra_cluster_distance(
    distances: &em_linalg::Matrix,
    labels: &[usize],
) -> Result<f64, ClusterError> {
    crate::agglomerative::validate_distances(distances)?;
    if labels.len() != distances.rows() {
        return Err(ClusterError::LabelLengthMismatch {
            expected: distances.rows(),
            got: labels.len(),
        });
    }
    let groups = groups_from_labels(labels);
    let mut per_cluster = Vec::new();
    for g in &groups {
        if g.len() < 2 {
            continue;
        }
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for (ai, &a) in g.iter().enumerate() {
            for &b in &g[ai + 1..] {
                sum += distances[(a, b)];
                cnt += 1;
            }
        }
        per_cluster.push(sum / cnt as f64);
    }
    Ok(if per_cluster.is_empty() {
        0.0
    } else {
        per_cluster.iter().sum::<f64>() / per_cluster.len() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_linalg::Matrix;

    fn blob_distances() -> Matrix {
        let pts: [f64; 6] = [0.0, 0.1, 0.2, 5.0, 5.1, 5.2];
        Matrix::from_fn(6, 6, |i, j| (pts[i] - pts[j]).abs())
    }

    #[test]
    fn good_partition_scores_high() {
        let d = blob_distances();
        let good = silhouette(&d, &[0, 0, 0, 1, 1, 1]).unwrap();
        assert!(good > 0.9, "good partition silhouette {good}");
    }

    #[test]
    fn bad_partition_scores_lower() {
        let d = blob_distances();
        let good = silhouette(&d, &[0, 0, 0, 1, 1, 1]).unwrap();
        let bad = silhouette(&d, &[0, 1, 0, 1, 0, 1]).unwrap();
        assert!(bad < good);
        assert!(
            bad < 0.0,
            "mixed partition should have negative silhouette, got {bad}"
        );
    }

    #[test]
    fn degenerate_partitions_are_zero() {
        let d = blob_distances();
        assert_eq!(silhouette(&d, &[0, 0, 0, 0, 0, 0]).unwrap(), 0.0);
        assert_eq!(silhouette(&d, &[0, 1, 2, 3, 4, 5]).unwrap(), 0.0);
    }

    #[test]
    fn label_length_mismatch_errors() {
        let d = blob_distances();
        assert!(silhouette(&d, &[0, 0]).is_err());
        assert!(mean_intra_cluster_distance(&d, &[0]).is_err());
    }

    #[test]
    fn groups_round_trip() {
        let groups = groups_from_labels(&[0, 1, 0, 2, 1]);
        assert_eq!(groups, vec![vec![0, 2], vec![1, 4], vec![3]]);
        assert!(groups_from_labels(&[]).is_empty());
    }

    #[test]
    fn intra_distance_prefers_tight_clusters() {
        let d = blob_distances();
        let tight = mean_intra_cluster_distance(&d, &[0, 0, 0, 1, 1, 1]).unwrap();
        let loose = mean_intra_cluster_distance(&d, &[0, 1, 0, 1, 0, 1]).unwrap();
        assert!(tight < loose);
        // All singletons: zero by convention.
        assert_eq!(
            mean_intra_cluster_distance(&d, &[0, 1, 2, 3, 4, 5]).unwrap(),
            0.0
        );
    }

    #[test]
    fn silhouette_bounded() {
        let d = blob_distances();
        for labels in [[0, 0, 1, 1, 2, 2], [0, 1, 1, 0, 2, 2], [2, 1, 0, 0, 1, 2]] {
            let s = silhouette(&d, &labels).unwrap();
            assert!((-1.0..=1.0).contains(&s));
        }
    }
}

/// Adjusted Rand Index between two labelled partitions of the same items:
/// 1.0 for identical partitions, ~0 for independent ones, negative for
/// worse-than-chance agreement. Used to compare CREW's cluster structure
/// across seeds or configurations.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> Result<f64, ClusterError> {
    if a.len() != b.len() {
        return Err(ClusterError::LabelLengthMismatch {
            expected: a.len(),
            got: b.len(),
        });
    }
    let n = a.len();
    if n < 2 {
        return Ok(1.0);
    }
    let ka = a.iter().copied().max().map_or(0, |m| m + 1);
    let kb = b.iter().copied().max().map_or(0, |m| m + 1);
    // Contingency table.
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let choose2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let mut sum_cells = 0.0;
    let mut row_sums = vec![0u64; ka];
    let mut col_sums = vec![0u64; kb];
    for (i, row) in table.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            sum_cells += choose2(c);
            row_sums[i] += c;
            col_sums[j] += c;
        }
    }
    let sum_rows: f64 = row_sums.iter().map(|&r| choose2(r)).sum();
    let sum_cols: f64 = col_sums.iter().map(|&c| choose2(c)).sum();
    let total = choose2(n as u64);
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate (e.g. both all-singletons or both one-cluster): they
        // agree exactly when equal, which the formula cannot express.
        return Ok(if a == b { 1.0 } else { 0.0 });
    }
    Ok((sum_cells - expected) / (max_index - expected))
}

#[cfg(test)]
mod ari_tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = [0, 0, 1, 1, 2, 2];
        assert_eq!(adjusted_rand_index(&a, &a).unwrap(), 1.0);
        // Label permutation does not matter.
        let b = [2, 2, 0, 0, 1, 1];
        assert_eq!(adjusted_rand_index(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // a splits by half, b alternates: agreement is chance-level.
        let a = [0, 0, 0, 1, 1, 1];
        let b = [0, 1, 0, 1, 0, 1];
        let ari = adjusted_rand_index(&a, &b).unwrap();
        assert!(ari.abs() < 0.35, "near-chance expected, got {ari}");
    }

    #[test]
    fn partial_agreement_in_between() {
        let a = [0, 0, 0, 1, 1, 1];
        let b = [0, 0, 1, 1, 1, 1]; // one item moved
        let ari = adjusted_rand_index(&a, &b).unwrap();
        assert!(ari > 0.2 && ari < 1.0, "got {ari}");
    }

    #[test]
    fn degenerate_partitions_handled() {
        // Both single-cluster: identical → 1.
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[0, 0, 0]).unwrap(), 1.0);
        // Both all-singletons: identical → 1.
        assert_eq!(adjusted_rand_index(&[0, 1, 2], &[0, 1, 2]).unwrap(), 1.0);
        // Single item / empty: trivially 1.
        assert_eq!(adjusted_rand_index(&[0], &[0]).unwrap(), 1.0);
        assert_eq!(adjusted_rand_index(&[], &[]).unwrap(), 1.0);
    }

    #[test]
    fn length_mismatch_is_error() {
        assert!(adjusted_rand_index(&[0, 1], &[0]).is_err());
    }

    #[test]
    fn ari_is_symmetric() {
        let a = [0, 0, 1, 1, 2, 0, 1];
        let b = [1, 1, 0, 0, 0, 2, 2];
        let ab = adjusted_rand_index(&a, &b).unwrap();
        let ba = adjusted_rand_index(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }
}
