//! Cophenetic utilities: the cophenetic distance between two items is the
//! linkage height at which they first share a cluster; the cophenetic
//! correlation (Pearson between original and cophenetic distances) measures
//! how faithfully a dendrogram preserves the input metric — the standard
//! diagnostic for choosing a linkage criterion.

use crate::agglomerative::Dendrogram;
use crate::ClusterError;
use em_linalg::Matrix;

/// Compute the cophenetic distance matrix of a dendrogram.
///
/// Items that never merge (possible under cannot-link constraints) get a
/// cophenetic distance of `f64::INFINITY`.
pub fn cophenetic_distances(dendrogram: &Dendrogram) -> Matrix {
    let n = dendrogram.n_items();
    let mut d = Matrix::zeros(n, n);
    if n == 0 {
        return d;
    }
    // Initialise to infinity off-diagonal; same-initial-cluster items merge
    // at height 0 (must-link pre-merges).
    let max_k = dendrogram.max_clusters();
    let base = dendrogram.cut(max_k).expect("max-cluster cut always valid");
    for i in 0..n {
        for j in 0..n {
            if i != j {
                d[(i, j)] = if base[i] == base[j] {
                    0.0
                } else {
                    f64::INFINITY
                };
            }
        }
    }
    // Replay merges coarser and coarser; the first time a pair lands in the
    // same cluster, record the merge height.
    let merges = dendrogram.merges();
    for (step, merge) in merges.iter().enumerate() {
        let k = max_k - (step + 1);
        if k == 0 {
            break;
        }
        let labels = dendrogram.cut(k).expect("cut within range");
        for i in 0..n {
            for j in i + 1..n {
                if labels[i] == labels[j] && d[(i, j)].is_infinite() {
                    d[(i, j)] = merge.distance;
                    d[(j, i)] = merge.distance;
                }
            }
        }
    }
    // The final merge (k would be 0): everything remaining coalesces at the
    // last merge's height.
    if let Some(last) = merges.last() {
        for i in 0..n {
            for j in 0..n {
                if i != j && d[(i, j)].is_infinite() && dendrogram.min_clusters() == 1 {
                    d[(i, j)] = last.distance;
                    d[(j, i)] = last.distance;
                }
            }
        }
    }
    d
}

/// Cophenetic correlation coefficient: Pearson correlation between the
/// upper triangles of the original and cophenetic distance matrices,
/// ignoring never-merged (infinite) pairs.
pub fn cophenetic_correlation(
    original: &Matrix,
    dendrogram: &Dendrogram,
) -> Result<f64, ClusterError> {
    crate::agglomerative::validate_distances(original)?;
    let n = original.rows();
    if n != dendrogram.n_items() {
        return Err(ClusterError::LabelLengthMismatch {
            expected: n,
            got: dendrogram.n_items(),
        });
    }
    let coph = cophenetic_distances(dendrogram);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if coph[(i, j)].is_finite() {
                xs.push(original[(i, j)]);
                ys.push(coph[(i, j)]);
            }
        }
    }
    Ok(em_linalg::stats::pearson(&xs, &ys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::{agglomerative, Constraints, Linkage};

    fn blob_distances() -> Matrix {
        let pts: [f64; 6] = [0.0, 0.1, 0.2, 5.0, 5.1, 5.2];
        Matrix::from_fn(6, 6, |i, j| (pts[i] - pts[j]).abs())
    }

    #[test]
    fn cophenetic_respects_merge_order() {
        let d = blob_distances();
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        let c = cophenetic_distances(&dg);
        // Within-blob cophenetic distances are small; across blobs large.
        assert!(c[(0, 1)] < 1.0);
        assert!(c[(3, 4)] < 1.0);
        assert!(c[(0, 3)] > 3.0);
        // Symmetric with zero diagonal.
        for i in 0..6 {
            assert_eq!(c[(i, i)], 0.0);
            for j in 0..6 {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
    }

    #[test]
    fn cophenetic_is_ultrametric() {
        // max(c(i,k), c(k,j)) >= c(i,j) for all triples.
        let d = blob_distances();
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        let c = cophenetic_distances(&dg);
        for i in 0..6 {
            for j in 0..6 {
                for k in 0..6 {
                    assert!(
                        c[(i, j)] <= c[(i, k)].max(c[(k, j)]) + 1e-9,
                        "ultrametric violated at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn correlation_is_high_for_well_separated_data() {
        let d = blob_distances();
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        let r = cophenetic_correlation(&d, &dg).unwrap();
        assert!(r > 0.9, "expected high cophenetic correlation, got {r}");
    }

    #[test]
    fn correlation_bounded_for_uniform_data() {
        // All distances equal: correlation degenerates to 0 (constant side).
        let d = Matrix::from_fn(4, 4, |i, j| if i == j { 0.0 } else { 1.0 });
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        let r = cophenetic_correlation(&d, &dg).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn cannot_link_pairs_get_infinite_cophenetic_distance() {
        let d = blob_distances();
        let constraints = Constraints {
            must_link: vec![],
            cannot_link: vec![(0, 3)],
        };
        let dg = agglomerative(&d, Linkage::Average, &constraints).unwrap();
        let c = cophenetic_distances(&dg);
        if dg.min_clusters() > 1 {
            assert!(c[(0, 3)].is_infinite());
        }
        // Correlation still computes over the finite pairs.
        let r = cophenetic_correlation(&d, &dg).unwrap();
        assert!(r.is_finite());
    }

    #[test]
    fn average_linkage_beats_single_on_chained_data() {
        // A chain of points: single linkage chains everything at tiny
        // heights, distorting large distances; average linkage tracks the
        // metric better.
        let pts: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let d = Matrix::from_fn(10, 10, |i, j| (pts[i] - pts[j]).abs());
        let single = agglomerative(&d, Linkage::Single, &Constraints::none()).unwrap();
        let average = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        let rs = cophenetic_correlation(&d, &single).unwrap();
        let ra = cophenetic_correlation(&d, &average).unwrap();
        assert!(ra > rs, "average {ra} should beat single {rs} on a chain");
    }
}
