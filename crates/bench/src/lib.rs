//! # em-bench
//!
//! Experiment binaries (one per table/figure, `exp_t1` … `exp_f4`, plus
//! `run_all`) and microbenchmarks for the CREW reproduction, timed by the
//! in-tree [`harness`] (criterion-free, offline).
//!
//! Every binary accepts an optional scale argument:
//!
//! ```text
//! cargo run --release -p em-bench --bin exp_t3            # full scale
//! cargo run --release -p em-bench --bin exp_t3 -- smoke   # seconds-scale
//! cargo run --release -p em-bench --bin exp_t3 -- quick   # reduced scale
//! cargo run --release -p em-bench --bin exp_t3 -- extended # all 7 families
//! ```
//!
//! Tables are printed as markdown on stdout and written as CSV under
//! `results/` for plotting.

use em_eval::{ExperimentConfig, Table};

pub mod harness;

pub use harness::{BenchReport, BenchResult, BenchmarkId, Criterion};

/// Parse the common CLI convention of the experiment binaries
/// (`smoke`/`--smoke`, `quick`/`--quick`, `extended`/`--extended`).
pub fn config_from_args() -> ExperimentConfig {
    match std::env::args()
        .nth(1)
        .as_deref()
        .map(|a| a.trim_start_matches('-').to_string())
    {
        Some(a) if a == "smoke" => ExperimentConfig::smoke(),
        Some(a) if a == "quick" => quick_config(),
        Some(a) if a == "extended" => ExperimentConfig::extended(),
        _ => ExperimentConfig::default(),
    }
}

/// A mid-scale configuration: all five families but fewer explained pairs —
/// minutes, not tens of minutes.
pub fn quick_config() -> ExperimentConfig {
    ExperimentConfig {
        entities: 150,
        pairs: 400,
        explain_pairs: 8,
        samples: 128,
        ..ExperimentConfig::default()
    }
}

/// Print the table and persist its CSV under `results/<id>.csv`.
pub fn emit(table: &Table) {
    println!("{}", table.to_markdown());
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{}.csv", table.id.to_lowercase()));
        match std::fs::write(&path, table.to_csv()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// Run an experiment function with standard error handling.
pub fn run(name: &str, f: impl FnOnce(&ExperimentConfig) -> Result<Table, em_eval::EvalError>) {
    let config = config_from_args();
    eprintln!(
        "running {name} (families={}, pairs={}, explained={}, samples={})",
        config.families.len(),
        config.pairs,
        config.explain_pairs,
        config.samples
    );
    let start = std::time::Instant::now();
    match f(&config) {
        Ok(table) => {
            emit(&table);
            eprintln!("{name} finished in {:.1}s", start.elapsed().as_secs_f64());
        }
        Err(e) => {
            eprintln!("{name} failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller_than_default() {
        let q = quick_config();
        let d = ExperimentConfig::default();
        assert!(q.pairs < d.pairs);
        assert!(q.explain_pairs < d.explain_pairs);
        assert_eq!(q.families.len(), d.families.len());
    }
}
