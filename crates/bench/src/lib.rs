//! # em-bench
//!
//! Experiment binaries (one per table/figure, `exp_t1` … `exp_f4`, plus
//! `run_all`) and microbenchmarks for the CREW reproduction, timed by the
//! in-tree [`harness`] (criterion-free, offline).
//!
//! Every binary accepts an optional scale argument:
//!
//! ```text
//! cargo run --release -p em-bench --bin exp_t3            # full scale
//! cargo run --release -p em-bench --bin exp_t3 -- smoke   # seconds-scale
//! cargo run --release -p em-bench --bin exp_t3 -- quick   # reduced scale
//! cargo run --release -p em-bench --bin exp_t3 -- extended # all 7 families
//! ```
//!
//! Tables are printed as markdown on stdout and written as CSV under
//! `results/` for plotting.

use em_eval::{EvalSession, ExperimentConfig, Table};

pub mod harness;

pub use harness::{BenchReport, BenchResult, BenchmarkId, Criterion};

/// Parse the common CLI convention of the experiment binaries
/// (`smoke`/`--smoke`, `quick`/`--quick`, `extended`/`--extended`, in any
/// argument position).
pub fn config_from_args() -> ExperimentConfig {
    let mut config = ExperimentConfig::default();
    for arg in std::env::args().skip(1) {
        match arg.trim_start_matches('-') {
            "smoke" => config = ExperimentConfig::smoke(),
            "quick" => config = quick_config(),
            "extended" => config = ExperimentConfig::extended(),
            _ => {}
        }
    }
    config
}

/// Parse `--jobs N` (concurrent experiments in `run_all`). Defaults to the
/// shared pool's thread budget; `--sequential` forces 1.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for (i, arg) in args.iter().enumerate() {
        if arg == "--sequential" {
            return 1;
        }
        if arg == "--jobs" || arg == "-j" {
            if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        }
        if let Some(v) = arg.strip_prefix("--jobs=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    em_pool::default_threads().max(1)
}

/// A mid-scale configuration: all five families but fewer explained pairs —
/// minutes, not tens of minutes.
pub fn quick_config() -> ExperimentConfig {
    ExperimentConfig {
        entities: 150,
        pairs: 400,
        explain_pairs: 8,
        samples: 128,
        ..ExperimentConfig::default()
    }
}

/// Smoke-aware artifact base name: `(name, smoke)` where `name` is
/// `<base>` for full runs and `<base>_smoke` for smoke runs. The single
/// source of the `_smoke` suffix convention — `run_all`, `run_stream`,
/// [`harness::Criterion`] and [`trace_finish`] all derive their
/// `BENCH_*/TRACE_*` file names from it, so the CI gates can rely on a
/// sanity pass never clobbering a full-precision baseline.
pub fn run_name(base: &str) -> (String, bool) {
    let smoke = harness::smoke_requested();
    let name = if smoke {
        format!("{base}_smoke")
    } else {
        base.to_string()
    };
    (name, smoke)
}

/// Write a markdown report section file under `results/` (workspace
/// root, same resolution as [`BenchReport::write`]). Callers gate on
/// smoke themselves — smoke runs must not clobber committed full-run
/// reports.
pub fn write_report(file: &str, body: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create results/: {e}");
        return;
    }
    let path = dir.join(file);
    match std::fs::write(&path, body) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Log the hit/miss/evict counters of a run's stores — one consistent
/// line regardless of which driver ran (run_all's session stores,
/// run_stream's content-keyed stores).
pub fn log_store_stats(label: &str, stores: &[(&str, em_eval::StoreStats)]) {
    let rendered: Vec<String> = stores
        .iter()
        .map(|(name, stats)| format!("{name} {stats}"))
        .collect();
    eprintln!("{label} store stats: {}", rendered.join(", "));
}

/// `--trace` on the command line or `EM_BENCH_TRACE=1`: record the
/// observability spans/counters of this run and emit `TRACE_*.json`.
pub fn trace_requested() -> bool {
    std::env::args().any(|a| a == "--trace" || a == "trace")
        || std::env::var_os("EM_BENCH_TRACE").is_some_and(|v| v != "0")
}

/// Write `results/TRACE_<name>.json` under the workspace root (same
/// manifest-dir resolution as [`BenchReport::write`], so `cargo bench`
/// CWDs don't scatter files).
pub fn write_trace(
    name: &str,
    report: &em_obs::TraceReport,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("TRACE_{name}.json"));
    std::fs::write(&path, report.to_json(name))?;
    Ok(path)
}

/// Start recording if `--trace` was requested; returns whether it was.
pub fn trace_start() -> bool {
    let on = trace_requested();
    if on {
        em_obs::reset();
        em_obs::set_enabled(true);
    }
    on
}

/// Stop recording, write `TRACE_<name>[_smoke].json` and print the
/// per-stage table. Pair with a `trace_start()` that returned true.
pub fn trace_finish(name: &str) -> em_obs::TraceReport {
    em_obs::set_enabled(false);
    let report = em_obs::collect();
    let (file, _) = run_name(name);
    match write_trace(&file, &report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write trace JSON: {e}"),
    }
    println!("\n## Stage timings ({name})\n");
    println!("{}", report.to_markdown(0));
    report
}

/// Print the table and persist its CSV under `results/<id>.csv`.
pub fn emit(table: &Table) {
    println!("{}", table.to_markdown());
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{}.csv", table.id.to_lowercase()));
        match std::fs::write(&path, table.to_csv()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// Run an experiment function with standard error handling. Each binary
/// gets a fresh [`EvalSession`] (the stores only pay off across
/// experiments — see `run_all`).
pub fn run(name: &str, f: impl FnOnce(&EvalSession) -> Result<Table, em_eval::EvalError>) {
    let config = config_from_args();
    eprintln!(
        "running {name} (families={}, pairs={}, explained={}, samples={})",
        config.families.len(),
        config.pairs,
        config.explain_pairs,
        config.samples
    );
    let session = EvalSession::new(config);
    let traced = trace_start();
    let start = std::time::Instant::now();
    match f(&session) {
        Ok(table) => {
            if traced {
                trace_finish(name);
            }
            emit(&table);
            eprintln!("{name} finished in {:.1}s", start.elapsed().as_secs_f64());
        }
        Err(e) => {
            eprintln!("{name} failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller_than_default() {
        let q = quick_config();
        let d = ExperimentConfig::default();
        assert!(q.pairs < d.pairs);
        assert!(q.explain_pairs < d.explain_pairs);
        assert_eq!(q.families.len(), d.families.len());
    }
}
