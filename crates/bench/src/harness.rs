//! A criterion-free micro-benchmark harness: warmup to calibrate batch
//! size, then a median-of-N timer, emitting both human-readable lines and
//! a machine-readable `results/BENCH_<name>.json`.
//!
//! The API mirrors the slice of `criterion` the four bench files use
//! (`benchmark_group`, `bench_with_input`, `bench_function`,
//! `sample_size`, `BenchmarkId`), so a bench target is a plain binary
//! with `harness = false` and zero external dependencies.
//!
//! Pass `--smoke` (or set `EM_BENCH_SMOKE=1`) to shrink warmup and
//! sample counts to a seconds-scale sanity run.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub group: String,
    pub id: String,
    pub median_ns: f64,
    pub samples: usize,
    pub iterations_per_sample: u64,
}

/// A set of results destined for one `BENCH_<name>.json` file.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub name: String,
    pub smoke: bool,
    pub results: Vec<BenchResult>,
}

impl BenchReport {
    pub fn new(name: &str, smoke: bool) -> Self {
        BenchReport {
            name: name.to_string(),
            smoke,
            results: Vec::new(),
        }
    }

    /// Serialise to JSON (hand-rolled: the schema is flat and the
    /// workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": {},\n", json_string(&self.name)));
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"group\": {}, \"id\": {}, \"median_ns\": {:.1}, \
                 \"samples\": {}, \"iterations_per_sample\": {}}}{}\n",
                json_string(&r.group),
                json_string(&r.id),
                r.median_ns,
                r.samples,
                r.iterations_per_sample,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `results/BENCH_<name>.json` under the *workspace* root,
    /// creating the directory. Resolved from this crate's manifest dir
    /// rather than the CWD: `cargo bench` runs targets with the package
    /// directory as CWD, which would otherwise scatter JSONs under
    /// `crates/bench/results/`.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Timing knobs; smoke mode trades precision for wall-clock.
#[derive(Debug, Clone, Copy)]
struct Timing {
    warmup: Duration,
    target_sample: Duration,
    sample_size: usize,
}

impl Timing {
    fn standard(smoke: bool) -> Timing {
        if smoke {
            Timing {
                warmup: Duration::from_millis(10),
                target_sample: Duration::from_millis(2),
                sample_size: 5,
            }
        } else {
            Timing {
                warmup: Duration::from_millis(200),
                target_sample: Duration::from_millis(25),
                sample_size: 15,
            }
        }
    }
}

/// Entry point object; the `criterion_main!` expansion owns one per run.
pub struct Criterion {
    report: BenchReport,
    timing: Timing,
    filter: Option<String>,
}

/// `--smoke` on the command line or `EM_BENCH_SMOKE=1`.
pub fn smoke_requested() -> bool {
    std::env::args().any(|a| a == "--smoke" || a == "smoke")
        || std::env::var_os("EM_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// `--filter <name>` / `--filter=<name>` on the command line: run only
/// the benchmark groups whose name contains `<name>` (substring match),
/// e.g. `cargo bench --bench kernels -- --filter simd`.
pub fn filter_requested() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--filter" {
            return args.next();
        }
        if let Some(f) = a.strip_prefix("--filter=") {
            return Some(f.to_string());
        }
    }
    None
}

impl Criterion {
    pub fn new(name: &str) -> Self {
        // Smoke runs get their own report file (`BENCH_<name>_smoke.json`)
        // so a CI sanity pass never clobbers a full-precision baseline.
        let (name, smoke) = crate::run_name(name);
        Criterion {
            report: BenchReport::new(&name, smoke),
            timing: Timing::standard(smoke),
            filter: filter_requested(),
        }
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let active = match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        };
        if active {
            eprintln!("group {name}");
        } else {
            eprintln!("group {name} (skipped by --filter)");
        }
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            active,
        }
    }

    /// Print the table and persist the JSON; called by `criterion_main!`.
    /// Filtered runs never write JSON — a partial result set must not
    /// clobber a committed full baseline.
    pub fn finalize(self) {
        if self.filter.is_some() {
            eprintln!("filtered run: JSON not written");
            return;
        }
        match self.report.write() {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write bench JSON: {e}"),
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    active: bool,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(3));
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), |b| f(b));
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.id, |b| f(b, input));
    }

    fn run<F>(&mut self, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.active {
            return;
        }
        let mut timing = self.criterion.timing;
        if let Some(n) = self.sample_size {
            if !self.criterion.report.smoke {
                timing.sample_size = n;
            }
        }
        let mut bencher = Bencher {
            timing,
            measurement: None,
        };
        f(&mut bencher);
        let Some((median_ns, iters)) = bencher.measurement else {
            eprintln!("  {id}: no measurement (b.iter never called)");
            return;
        };
        eprintln!("  {:<28} median {}", id, format_ns(median_ns));
        self.criterion.report.results.push(BenchResult {
            group: self.name.clone(),
            id,
            median_ns,
            samples: timing.sample_size,
            iterations_per_sample: iters,
        });
    }

    /// Kept for criterion API parity; results are flushed by `finalize`.
    pub fn finish(self) {}
}

pub struct Bencher {
    timing: Timing,
    /// `(median_ns_per_iter, iterations_per_sample)`.
    measurement: Option<(f64, u64)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup: run until the warmup budget elapses, estimating cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.timing.warmup || warmup_iters == 0 {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Batch size targeting `target_sample` per measurement.
        let iters = ((self.timing.target_sample.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.timing.sample_size);
        for _ in 0..self.timing.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = if samples.len() % 2 == 1 {
            samples[samples.len() / 2]
        } else {
            (samples[samples.len() / 2 - 1] + samples[samples.len() / 2]) / 2.0
        };
        self.measurement = Some((median, iters));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::harness::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main`: runs every group, then writes `BENCH_<target>.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::new(env!("CARGO_CRATE_NAME"));
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut b = Bencher {
            timing: Timing {
                warmup: Duration::from_micros(100),
                target_sample: Duration::from_micros(50),
                sample_size: 5,
            },
            measurement: None,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        let (median, iters) = b.measurement.unwrap();
        assert!(median > 0.0);
        assert!(iters >= 1);
    }

    #[test]
    fn report_json_is_well_formed() {
        let mut report = BenchReport::new("unit \"test\"", true);
        report.results.push(BenchResult {
            group: "g".into(),
            id: "f/20".into(),
            median_ns: 1234.5,
            samples: 5,
            iterations_per_sample: 10,
        });
        let json = report.to_json();
        assert!(json.contains("\"name\": \"unit \\\"test\\\"\""));
        assert!(json.contains("\"median_ns\": 1234.5"));
        assert!(json.contains("\"smoke\": true"));
        // Balanced braces/brackets as a cheap structural check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("uniform", 80).id, "uniform/80");
        assert_eq!(BenchmarkId::from_parameter("logistic").id, "logistic");
    }
}
