//! Regenerates experiment F2 (see DESIGN.md for the experiment index).
fn main() {
    em_bench::run("exp_f2", em_eval::exp_f2);
}
