//! Regenerates experiment F4 (see DESIGN.md for the experiment index).
fn main() {
    em_bench::run("exp_f4", em_eval::exp_f4);
}
