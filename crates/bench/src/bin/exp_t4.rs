//! Regenerates experiment T4 (see DESIGN.md for the experiment index).
fn main() {
    em_bench::run("exp_t4", em_eval::exp_t4);
}
