//! Closed-loop load generator for the online explanation service
//! (`em-serve`): starts the server in-process, drives it with N
//! concurrent keep-alive clients over a small shared pair pool (so
//! concurrent identical requests are guaranteed and coalescing has
//! something to merge), and emits `BENCH_serve[_smoke].json` with
//! p50/p99 latency and throughput rows.
//!
//! The run *fails* unless the session stores prove query sharing
//! (explanation/perturbation hits + coalesced misses > 0) — that is the
//! acceptance gate for the coalescing front queue, checked in CI.
//!
//! ```text
//! cargo run --release -p em-bench --bin load_gen               # full
//! cargo run --release -p em-bench --bin load_gen -- --smoke    # seconds
//! cargo run --release -p em-bench --bin load_gen -- --trace    # + spans
//! cargo run --release -p em-bench --bin load_gen -- --clients 16 --requests 200
//! ```

use em_rngs::{Rng, SeedableRng};
use em_serve::{parse_json, write_request, Connection, Limits, ServeOptions, ServeState, Server};
use em_synth::Family;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// `--flag N` or `--flag=N`, any position.
fn arg_usize(flag: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            return args.get(i + 1).and_then(|v| v.parse().ok());
        }
        if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
            return v.parse().ok();
        }
    }
    None
}

fn fail(msg: &str) -> ! {
    eprintln!("load_gen: {msg}");
    std::process::exit(1);
}

/// Render one request body from a pair's attribute values.
fn pair_body(pair: &em_data::EntityPair) -> String {
    let side = |record: &em_data::Record| {
        let values: Vec<String> = record
            .values()
            .iter()
            .map(|v| format!("\"{}\"", em_serve::escape_json(v)))
            .collect();
        format!("[{}]", values.join(","))
    };
    format!(
        "{{\"pairs\":[{{\"left\":{},\"right\":{}}}]}}",
        side(pair.left()),
        side(pair.right())
    )
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_ns[rank] as f64
}

fn main() {
    let (name, smoke) = em_bench::run_name("serve");
    let clients = arg_usize("--clients").unwrap_or(if smoke { 4 } else { 8 });
    let requests = arg_usize("--requests").unwrap_or(if smoke { 16 } else { 80 });
    let window_ms = arg_usize("--window-ms").unwrap_or(4);
    let query_jobs = em_bench::jobs_from_args();
    // A small pair pool is the point: with more clients than distinct
    // pairs, concurrent identical requests are guaranteed, so the
    // coalescing window and the stores have duplicates to merge.
    let pool_size = arg_usize("--pairs").unwrap_or(if smoke { 2 } else { 4 });

    eprintln!(
        "load_gen: {clients} clients x {requests} requests over {pool_size} pairs \
         (window {window_ms} ms, query jobs {query_jobs})"
    );
    let state = ServeState::load(Family::Restaurants, em_eval::ExperimentConfig::smoke())
        .unwrap_or_else(|e| fail(&format!("state load failed: {e}")));
    let state = Arc::new(state);
    let bodies: Vec<String> = state
        .ctx
        .pairs_to_explain(pool_size)
        .iter()
        .map(|lp| pair_body(&lp.pair))
        .collect();
    if bodies.len() < pool_size {
        fail("test split smaller than the requested pair pool");
    }

    let traced = em_bench::trace_start();
    let mut server = Server::start(
        Arc::clone(&state),
        ServeOptions {
            window: Duration::from_millis(window_ms as u64),
            query_jobs,
            read_timeout: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("server start failed: {e}")));
    let addr = server.addr();
    eprintln!("load_gen: serving on {addr}");

    // Closed-loop clients on a dedicated pool. NOT the global pool: the
    // server's dispatcher fans explanation work out over
    // `em_pool::global()`, and clients parked in global workers while
    // blocking on their own replies would starve it.
    let results: Vec<OnceLock<(Vec<u64>, Vec<u64>)>> =
        (0..clients).map(|_| OnceLock::new()).collect();
    let client_pool = em_pool::WorkerPool::new(clients.saturating_sub(1));
    let t0 = Instant::now();
    client_pool.run(clients, clients, &|c| {
        let mut rng = em_rngs::rngs::StdRng::seed_from_u64(0xc11e ^ c as u64);
        let stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| fail(&format!("client {c} connect failed: {e}")));
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        let _ = stream.set_nodelay(true);
        let mut conn = Connection::new(stream);
        let mut predict_ns = Vec::new();
        let mut explain_ns = Vec::new();
        for r in 0..requests {
            let body = &bodies[rng.gen_range(0..bodies.len())];
            // Every third request asks for an explanation; the rest are
            // match predictions (the realistic traffic skew).
            let explain = r % 3 == 2;
            let path = if explain { "/explain" } else { "/predict" };
            let t = Instant::now();
            write_request(conn.stream_mut(), "POST", path, body.as_bytes())
                .unwrap_or_else(|e| fail(&format!("client {c} write failed: {e}")));
            let resp = conn
                .read_response(&Limits::default())
                .unwrap_or_else(|e| fail(&format!("client {c} read failed: {e}")));
            let ns = t.elapsed().as_nanos() as u64;
            if resp.status != 200 {
                fail(&format!(
                    "client {c} got {} on {path}: {}",
                    resp.status,
                    String::from_utf8_lossy(&resp.body)
                ));
            }
            let doc = parse_json(std::str::from_utf8(&resp.body).unwrap_or(""))
                .unwrap_or_else(|e| fail(&format!("client {c} got invalid JSON: {e}")));
            match doc.get("results").and_then(em_serve::Json::as_array) {
                Some(items) if items.len() == 1 => {}
                _ => fail(&format!("client {c} got a malformed results array")),
            }
            if explain {
                explain_ns.push(ns);
            } else {
                predict_ns.push(ns);
            }
        }
        let _ = results[c].set((predict_ns, explain_ns));
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    server.shutdown();
    if traced {
        em_bench::trace_finish("serve");
    }

    // Deterministic aggregation: client-indexed slots, sorted merges.
    let mut predict_ns = Vec::new();
    let mut explain_ns = Vec::new();
    for slot in &results {
        let (p, e) = slot
            .get()
            .unwrap_or_else(|| fail("a client exited without reporting"));
        predict_ns.extend_from_slice(p);
        explain_ns.extend_from_slice(e);
    }
    predict_ns.sort_unstable();
    explain_ns.sort_unstable();
    let total_requests = predict_ns.len() + explain_ns.len();
    let requests_per_sec = total_requests as f64 / wall_secs.max(1e-9);
    eprintln!(
        "load_gen: {total_requests} requests in {wall_secs:.2}s ({requests_per_sec:.0} req/s); \
         predict p50 {:.2} ms p99 {:.2} ms; explain p50 {:.2} ms p99 {:.2} ms",
        percentile(&predict_ns, 50.0) / 1e6,
        percentile(&predict_ns, 99.0) / 1e6,
        percentile(&explain_ns, 50.0) / 1e6,
        percentile(&explain_ns, 99.0) / 1e6,
    );

    // The coalescing proof: concurrent identical pairs must have shared
    // backend work through the session stores. A run that answered every
    // explain with a fresh computation is a regression, not a bench.
    let explain_stats = state.session.explanations().stats();
    let perturb_stats = state.session.explanations().perturbation_stats();
    em_bench::log_store_stats(
        "load_gen",
        &[
            ("explanations", explain_stats),
            ("perturbation sets", perturb_stats),
        ],
    );
    let shared_queries =
        explain_stats.hits + explain_stats.coalesced + perturb_stats.hits + perturb_stats.coalesced;
    if shared_queries == 0 {
        fail("no store hits or coalesced misses: concurrent identical pairs did not share queries");
    }
    eprintln!("load_gen: {shared_queries} shared matcher-query lookups (hits + coalesced)");

    let mut bench = em_bench::BenchReport::new(&name, smoke);
    let mut row = |id: &str, value: f64| {
        bench.results.push(em_bench::BenchResult {
            group: "serve".to_string(),
            id: id.to_string(),
            median_ns: value,
            samples: 1,
            iterations_per_sample: 1,
        });
    };
    row("predict_p50", percentile(&predict_ns, 50.0));
    row("predict_p99", percentile(&predict_ns, 99.0));
    row("explain_p50", percentile(&explain_ns, 50.0));
    row("explain_p99", percentile(&explain_ns, 99.0));
    // Inverse throughput so the CI gate's bigger-is-worse rule applies.
    row(
        "ns_per_request",
        wall_secs * 1e9 / total_requests.max(1) as f64,
    );
    row("requests_per_sec", requests_per_sec);
    row("shared_queries", shared_queries as f64);
    row("total", wall_secs * 1e9);
    match bench.write() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench JSON: {e}"),
    }
}
