//! Regenerates extension experiment E2 (see DESIGN.md).
fn main() {
    em_bench::run("exp_e2", em_eval::exp_e2);
}
