//! Regenerates experiment F1 (see DESIGN.md for the experiment index).
fn main() {
    em_bench::run("exp_f1", em_eval::exp_f1);
}
