//! Regenerates experiment T2 (see DESIGN.md for the experiment index).
fn main() {
    em_bench::run("exp_t2", em_eval::exp_t2);
}
