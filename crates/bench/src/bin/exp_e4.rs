//! Regenerates extension experiment E4 (see DESIGN.md).
fn main() {
    em_bench::run("exp_e4", em_eval::exp_e4);
}
