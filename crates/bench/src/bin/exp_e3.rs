//! Regenerates extension experiment E3 (see DESIGN.md).
fn main() {
    em_bench::run("exp_e3", em_eval::exp_e3);
}
