//! Regenerates extension experiment E1 (see DESIGN.md).
fn main() {
    em_bench::run("exp_e1", em_eval::exp_e1);
}
