//! Regenerates experiment T6 (see DESIGN.md for the experiment index).
fn main() {
    em_bench::run("exp_t6", em_eval::exp_t6);
}
