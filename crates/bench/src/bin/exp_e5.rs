//! Regenerates extension experiment E5 (see DESIGN.md).
fn main() {
    em_bench::run("exp_e5", em_eval::exp_e5);
}
