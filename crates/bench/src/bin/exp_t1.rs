//! Regenerates experiment T1 (see DESIGN.md for the experiment index).
fn main() {
    em_bench::run("exp_t1", em_eval::exp_t1);
}
