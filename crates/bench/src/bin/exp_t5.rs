//! Regenerates experiment T5 (see DESIGN.md for the experiment index).
fn main() {
    em_bench::run("exp_t5", em_eval::exp_t5);
}
