//! Regenerates extension experiment E6 (see DESIGN.md).
fn main() {
    em_bench::run("exp_e6", em_eval::exp_e6);
}
