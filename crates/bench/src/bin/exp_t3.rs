//! Regenerates experiment T3 (see DESIGN.md for the experiment index).
fn main() {
    em_bench::run("exp_t3", em_eval::exp_t3);
}
