//! Regenerates extension experiment E7 (see DESIGN.md).
fn main() {
    em_bench::run("exp_e7", em_eval::exp_e7);
}
