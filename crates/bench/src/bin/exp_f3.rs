//! Regenerates experiment F3 (see DESIGN.md for the experiment index).
fn main() {
    em_bench::run("exp_f3", em_eval::exp_f3);
}
