//! End-to-end streaming pipeline benchmark: blocking → matching →
//! explaining over two synthetic record collections (`em-stream`).
//!
//! Reports pairs/sec over the candidate set, the candidate-reduction
//! ratio, and peak RSS, and enforces the pipeline's memory discipline:
//! the run fails if the bounded stores exceed their byte budget or the
//! process exceeds the RSS cap.
//!
//! ```text
//! cargo run --release -p em-bench --bin run_stream              # full
//! cargo run --release -p em-bench --bin run_stream -- --smoke   # seconds
//! cargo run --release -p em-bench --bin run_stream -- --trace   # + spans
//! cargo run --release -p em-bench --bin run_stream -- --entities 8000
//! ```

/// `--flag N` or `--flag=N`, any position.
fn arg_usize(flag: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            return args.get(i + 1).and_then(|v| v.parse().ok());
        }
        if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
            return v.parse().ok();
        }
    }
    None
}

/// Bare `--flag`, any position.
fn arg_flag(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

/// `--flag X.Y` or `--flag=X.Y`, any position.
fn arg_f64(flag: &str) -> Option<f64> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            return args.get(i + 1).and_then(|v| v.parse().ok());
        }
        if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
            return v.parse().ok();
        }
    }
    None
}

fn fail(msg: &str) -> ! {
    eprintln!("run_stream: {msg}");
    std::process::exit(1);
}

fn main() {
    // Bench rows land in `BENCH_stream[_smoke].json` (the CI gate's
    // baseline); traces follow the binary-name convention like run_all.
    let (name, smoke) = em_bench::run_name("stream");
    let jobs = em_bench::jobs_from_args();
    // Full scale targets ≥10⁶ candidate pairs out of hybrid token+LSH
    // blocking (asserted below); smoke is a seconds-scale sanity pass of
    // the same path.
    let entities = arg_usize("--entities").unwrap_or(if smoke { 90 } else { 18_000 });
    let min_candidates =
        arg_usize("--min-candidates").unwrap_or(if smoke { 50 } else { 1_000_000 });
    // The store budget bounds cache growth; the RSS cap is the
    // whole-process ceiling the flat-memory claim is checked against.
    // Unbounded full-scale demand is ~630 MB, so the 512 MiB cap only
    // holds *because* eviction does its job (observed peak: ~270 MB =
    // records + matcher + budget-clamped stores).
    let budget_mb = arg_usize("--budget-mb").unwrap_or(if smoke { 32 } else { 192 });
    let rss_cap_mb = arg_usize("--rss-cap-mb").unwrap_or(if smoke { 128 } else { 512 });

    let collections = em_synth::record_collections(
        em_synth::Family::Restaurants,
        em_synth::CollectionsConfig {
            entities,
            duplicate_rate: 0.35,
            extra_right: entities / 4,
            seed: 11,
        },
    )
    .unwrap_or_else(|e| fail(&format!("workload generation failed: {e}")));
    eprintln!(
        "run_stream: {} left × {} right records ({} true duplicate pairs), {jobs} jobs",
        collections.left.len(),
        collections.right.len(),
        collections.true_matches.len(),
    );

    // Matcher + embeddings come from separate labelled history, as in a
    // deployment; the streamed collections themselves are unlabelled.
    let train = em_synth::GeneratorConfig {
        entities: if smoke { 60 } else { 200 },
        pairs: if smoke { 150 } else { 500 },
        ..Default::default()
    };
    let ctx = em_eval::EvalContext::prepare(em_synth::Family::Restaurants, train)
        .unwrap_or_else(|e| fail(&format!("matcher training failed: {e}")));
    let matcher = ctx
        .matcher(em_eval::MatcherKind::Logistic)
        .unwrap_or_else(|e| fail(&format!("matcher training failed: {e}")));

    let budget = em_eval::StoreBudget::total(budget_mb << 20);
    let budget_total = budget.explanation_bytes + budget.perturbation_bytes;
    // The synthetic families draw from finite vocab pools, so their
    // pool-token blocks saturate far past any sane cap while name-token
    // blocks stay small; the default cap excludes exactly the former.
    // LSH signature blocking rides on top (off with `--no-lsh`): it adds
    // embedding-neighbourhood candidates token keys never see, and it is
    // what pushes the full-scale workload past 10⁶ candidate pairs.
    let mut blocking = em_stream::BlockingConfig::default();
    if let Some(cap) = arg_usize("--max-block") {
        blocking.max_block_size = cap;
    }
    if !arg_flag("--no-lsh") {
        let mut lsh = em_stream::LshBlocking::default();
        if let Some(tables) = arg_usize("--lsh-tables") {
            lsh.tables = tables;
        }
        if let Some(bits) = arg_usize("--lsh-bits") {
            lsh.bits = bits as u32;
        }
        if let Some(cap) = arg_usize("--lsh-max-block") {
            lsh.max_block_size = cap;
        }
        blocking.lsh = Some(lsh);
    }
    let options = em_stream::StreamOptions {
        blocking,
        jobs,
        store_budget: Some(budget),
        // `--threshold X` overrides the matcher's own cut (e.g. `2.0`
        // benchmarks block+match alone by matching nothing).
        threshold: arg_f64("--threshold"),
        ..Default::default()
    };

    let traced = em_bench::trace_start();
    let start = std::time::Instant::now();
    let out = em_stream::run_stream(
        &collections.schema,
        &collections.left,
        &collections.right,
        matcher.as_ref(),
        ctx.embeddings.clone(),
        &options,
    )
    .unwrap_or_else(|e| fail(&format!("pipeline failed: {e}")));
    let total_secs = start.elapsed().as_secs_f64();
    let trace = traced.then(|| em_bench::trace_finish("run_stream"));

    // `None` means /proc lacks VmHWM (non-Linux, restricted mounts):
    // report and gate RSS only when a real measurement exists.
    let peak_rss = em_obs::peak_rss_bytes();
    if peak_rss.is_none() {
        eprintln!("run_stream: warning: peak RSS unavailable (no VmHWM); skipping RSS rows");
    }
    let pairs_per_sec = out.candidates as f64 / total_secs.max(1e-9);
    eprintln!(
        "run_stream: {} candidates of {} comparisons (reduction {:.4}, {} blocks, \
         {} oversized, {} stop-token skipped, {} lsh blocks / {} lsh skipped), \
         {} matches, {} entity clusters in {total_secs:.1}s ({pairs_per_sec:.0} pairs/s)",
        out.candidates,
        out.comparisons,
        out.reduction_ratio,
        out.blocks,
        out.oversized_blocks,
        out.skipped_stop_tokens,
        out.lsh_blocks,
        out.lsh_skipped,
        out.matches.len(),
        out.entity_clusters.len(),
    );
    em_bench::log_store_stats(
        "run_stream",
        &[
            ("perturbation sets", out.perturb_stats),
            ("explanations", out.explain_stats),
        ],
    );
    eprintln!(
        "run_stream: store peak {} of {budget_total} budget bytes, process peak RSS {}",
        out.peak_store_bytes,
        peak_rss.map_or("unavailable".to_string(), |b| format!("{b} bytes")),
    );

    // Ratios are scaled into median_ns so one flat schema carries every
    // row; only total and peak_rss_bytes clear the CI gate's floor — the
    // rest are reported for the record, not gated.
    let mut bench = em_bench::BenchReport::new(&name, smoke);
    let mut row = |id: &str, value: f64| {
        bench.results.push(em_bench::BenchResult {
            group: "stream".to_string(),
            id: id.to_string(),
            median_ns: value,
            samples: 1,
            iterations_per_sample: 1,
        });
    };
    row("total", total_secs * 1e9);
    if let Some(rss) = peak_rss {
        row("peak_rss_bytes", rss as f64);
    }
    row("pairs_per_sec", pairs_per_sec);
    row("reduction_ratio_ppm", out.reduction_ratio * 1e6);
    row("candidates", out.candidates as f64);
    row("matches", out.matches.len() as f64);
    match bench.write() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench JSON: {e}"),
    }

    if !smoke {
        let mut report = String::from(
            "# Streaming pipeline report\n\nGenerated by `run_stream`; see DESIGN.md \
             \"Streaming pipeline\".\n\n| metric | value |\n|---|---|\n",
        );
        for (metric, value) in [
            (
                "left × right records",
                format!("{} × {}", collections.left.len(), collections.right.len()),
            ),
            ("candidate pairs", out.candidates.to_string()),
            ("cross-product comparisons", out.comparisons.to_string()),
            ("reduction ratio", format!("{:.4}", out.reduction_ratio)),
            (
                "blocks (oversized skipped)",
                format!("{} ({})", out.blocks, out.oversized_blocks),
            ),
            (
                "stop-token blocks skipped",
                out.skipped_stop_tokens.to_string(),
            ),
            (
                "LSH blocks (oversized skipped)",
                format!("{} ({})", out.lsh_blocks, out.lsh_skipped),
            ),
            ("matches explained", out.matches.len().to_string()),
            ("entity clusters", out.entity_clusters.len().to_string()),
            ("wall clock", format!("{total_secs:.1} s")),
            ("candidate pairs/sec", format!("{pairs_per_sec:.0}")),
            ("store budget", format!("{budget_total} B")),
            ("store peak resident", format!("{} B", out.peak_store_bytes)),
            (
                "process peak RSS",
                peak_rss.map_or("unavailable".to_string(), |b| format!("{b} B")),
            ),
        ] {
            report.push_str(&format!("| {metric} | {value} |\n"));
        }
        if let Some(trace) = &trace {
            report.push_str(
                "\n## Stage timings\n\nFrom `run_stream --trace` \
                 (`results/TRACE_run_stream.json`).\n\n",
            );
            report.push_str(&trace.to_markdown(1_000_000));
            if !trace.counters.is_empty() {
                report.push_str(
                    "\n## Counters\n\nMonotonic counters from the same trace — \
                     `stream/block/*` accounts for every skipped block family and \
                     `ann/*` for the LSH signature work behind the hybrid blocker.\n\n\
                     | counter | value |\n|---|---:|\n",
                );
                for (name, value) in &trace.counters {
                    report.push_str(&format!("| {name} | {value} |\n"));
                }
            }
        }
        em_bench::write_report("REPORT_stream.md", &report);
    }

    // Hard acceptance checks — a bench row nobody reads must not be the
    // only witness of a broken memory bound.
    if out.candidates < min_candidates {
        fail(&format!(
            "candidate workload too small: {} < {min_candidates} (raise --entities)",
            out.candidates
        ));
    }
    if out.peak_store_bytes > budget_total {
        fail(&format!(
            "store budget exceeded: peak {} > {budget_total} bytes",
            out.peak_store_bytes
        ));
    }
    if let Some(rss) = peak_rss.filter(|&rss| rss > (rss_cap_mb as u64) << 20) {
        fail(&format!(
            "peak RSS {rss} bytes exceeds cap {rss_cap_mb} MiB"
        ));
    }
    eprintln!("run_stream: memory bounds held (budget {budget_mb} MiB, RSS cap {rss_cap_mb} MiB)");
}
