//! Microbenchmarks of the perturbation-query hot path kernels: cell
//! tokenization (string vs arena-interned), batched feature extraction,
//! the unrolled dense kernels (`matvec`/`cosine`), the semantic
//! distance-matrix build, and one end-to-end single-pair CREW
//! explanation on the logistic matcher — the acceptance row for the
//! "explain one pair in under a millisecond" target.

use crew_core::{Crew, CrewOptions, Explainer, PerturbOptions};
use em_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_embed::{EmbeddingOptions, WordEmbeddings};
use em_linalg::Matrix;
use em_matchers::{ExtractScratch, FeatureExtractor, LogisticMatcher, TrainOptions};
use em_text::TokenArena;
use std::sync::Arc;

/// The standard synthetic splits every experiment trains on.
fn splits() -> (em_data::Dataset, em_data::Dataset, em_data::Dataset) {
    let d = em_synth::generate(
        em_synth::Family::Restaurants,
        em_synth::GeneratorConfig::default(),
    )
    .expect("standard synthetic dataset");
    let s = d.split(0.7, 0.15, 7).expect("split");
    (s.train, s.validation, s.test)
}

/// Distinct cell values of a dataset split (the tokenizer's real input
/// distribution, duplicates removed so the string path can't coast on
/// its own per-call caches).
fn cells_of(data: &em_data::Dataset) -> Vec<String> {
    let mut cells: Vec<String> = Vec::new();
    for ex in data.examples() {
        for rec in [ex.pair.left(), ex.pair.right()] {
            for i in 0..rec.len() {
                cells.push(rec.value(i).to_string());
            }
        }
    }
    cells.sort();
    cells.dedup();
    cells
}

fn bench_tokenize(c: &mut Criterion) {
    let (train, _, _) = splits();
    let cells = cells_of(&train);
    let mut group = c.benchmark_group("tokenize");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("string"), &cells, |b, cells| {
        b.iter(|| {
            let mut n = 0usize;
            for cell in cells {
                n += em_text::tokenize(cell).len();
            }
            n
        });
    });
    // Cold: cleared per iteration, so every cell is first-sight interned
    // (tokens + sorted set + gram set — strictly more work than the
    // string path's token list).
    group.bench_with_input(
        BenchmarkId::from_parameter("arena_cold"),
        &cells,
        |b, cells| {
            let mut arena = TokenArena::new();
            b.iter(|| {
                arena.clear();
                let mut n = 0usize;
                for cell in cells {
                    let id = arena.intern_cell(cell);
                    n += arena.tokens(id).len();
                }
                n
            });
        },
    );
    // Hot: every cell already interned — the perturbation-query pattern,
    // where masked variants recycle a tiny set of cell values.
    group.bench_with_input(
        BenchmarkId::from_parameter("arena_hot"),
        &cells,
        |b, cells| {
            let mut arena = TokenArena::new();
            for cell in cells {
                arena.intern_cell(cell);
            }
            b.iter(|| {
                let mut n = 0usize;
                for cell in cells {
                    let id = arena.intern_cell(cell);
                    n += arena.tokens(id).len();
                }
                n
            });
        },
    );
    group.finish();
}

fn bench_extract_batch(c: &mut Criterion) {
    let (train, _, test) = splits();
    let fe = FeatureExtractor::fit(&train);
    let pairs: Vec<em_data::EntityPair> = test
        .examples()
        .iter()
        .take(64)
        .map(|ex| ex.pair.clone())
        .collect();
    let mut group = c.benchmark_group("extract_batch");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter("fresh_scratch"),
        &pairs,
        |b, pairs| {
            b.iter(|| fe.extract_batch(pairs));
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("reused_scratch"),
        &pairs,
        |b, pairs| {
            let mut scratch = ExtractScratch::new();
            let mut buf = Vec::new();
            b.iter(|| {
                fe.extract_batch_into(pairs, &mut scratch, &mut buf);
                buf.len()
            });
        },
    );
    group.finish();
}

fn bench_dense_kernels(c: &mut Criterion) {
    use em_rngs::{Rng, SeedableRng};
    let mut rng = em_rngs::rngs::StdRng::seed_from_u64(0xbe9c);
    let m = Matrix::from_fn(256, 128, |_, _| rng.gen_range(-1.0..1.0));
    let v: Vec<f64> = (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let w: Vec<f64> = (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect();

    let mut group = c.benchmark_group("matvec");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("256x128"), &m, |b, m| {
        let mut out = Vec::new();
        b.iter(|| {
            m.matvec_into(&v, &mut out);
            out[0]
        });
    });
    group.finish();

    let mut group = c.benchmark_group("cosine");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("d128"), &v, |b, v| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..256 {
                acc += em_linalg::cosine(v, &w);
            }
            acc
        });
    });
    group.finish();
}

fn bench_simd(c: &mut Criterion) {
    use em_linalg::kernels::{self, KernelBackend};
    use em_rngs::{Rng, SeedableRng};
    let mut rng = em_rngs::rngs::StdRng::seed_from_u64(0x51d0);
    const D: usize = 1024;
    let a: Vec<f64> = (0..D).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b_: Vec<f64> = (0..D).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let m = Matrix::from_fn(64, D, |_, _| rng.gen_range(-1.0..1.0));

    let mut backends = vec![KernelBackend::Scalar];
    if kernels::avx2_available() {
        backends.push(KernelBackend::Avx2);
    }

    let mut group = c.benchmark_group("simd");
    group.sample_size(10);
    for &backend in &backends {
        let name = backend.name();
        group.bench_with_input(BenchmarkId::new("dot", name), &a, |bench, a| {
            bench.iter(|| kernels::dot_with(backend, a, &b_));
        });
        group.bench_with_input(BenchmarkId::new("cosine", name), &a, |bench, a| {
            bench.iter(|| kernels::cosine_with(backend, a, &b_));
        });
        group.bench_with_input(BenchmarkId::new("axpy", name), &a, |bench, a| {
            let mut y = b_.clone();
            bench.iter(|| {
                kernels::axpy_with(backend, 0.5, a, &mut y);
                y[0]
            });
        });
        group.bench_with_input(BenchmarkId::new("softmax", name), &a, |bench, a| {
            let mut out = Vec::new();
            bench.iter(|| {
                kernels::softmax_into_with(backend, a, &mut out);
                out[0]
            });
        });
        group.bench_with_input(BenchmarkId::new("matvec", name), &m, |bench, m| {
            let mut out = vec![0.0; 64];
            bench.iter(|| {
                kernels::matvec_into_with(backend, 64, D, m.as_slice(), &a, &mut out);
                out[0]
            });
        });
    }
    group.finish();
}

fn bench_distance_matrix(c: &mut Criterion) {
    let (train, _, _) = splits();
    // A realistic explained-pair word list: every word of eight records,
    // duplicates kept (the interner inside the kernel must earn its keep).
    let mut words: Vec<String> = Vec::new();
    for ex in train.examples().iter().take(4) {
        for rec in [ex.pair.left(), ex.pair.right()] {
            words.extend(em_text::tokenize(&rec.full_text()));
        }
    }
    let sentences: Vec<Vec<String>> = train
        .examples()
        .iter()
        .take(40)
        .flat_map(|ex| {
            [
                em_text::tokenize(&ex.pair.left().full_text()),
                em_text::tokenize(&ex.pair.right().full_text()),
            ]
        })
        .collect();
    let emb = WordEmbeddings::train(
        sentences.iter().map(|v| v.as_slice()),
        EmbeddingOptions {
            dimensions: 32,
            ..Default::default()
        },
    )
    .unwrap();
    let mut group = c.benchmark_group("distance_matrix");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("{}w", words.len())),
        &words,
        |b, words| {
            b.iter(|| em_embed::semantic_distance_matrix(&emb, words));
        },
    );
    group.finish();
}

fn bench_explain_single(c: &mut Criterion) {
    let (train, val, test) = splits();
    let matcher = LogisticMatcher::fit(&train, &val, TrainOptions::default()).expect("fit");
    let pair = test.examples()[0].pair.clone();
    let sentences: Vec<Vec<String>> = vec![
        em_text::tokenize(&pair.left().full_text()),
        em_text::tokenize(&pair.right().full_text()),
    ];
    let emb = Arc::new(
        WordEmbeddings::train(
            sentences.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 32,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let crew = Crew::new(
        emb,
        CrewOptions {
            perturb: PerturbOptions {
                threads: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut group = c.benchmark_group("explain_single");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("logistic"), &pair, |b, pair| {
        b.iter(|| crew.explain(&matcher, pair).unwrap());
    });
    // Stage attribution: the matcher-query stage vs the query-free tail
    // (surrogates, knowledge distances, clustering, model selection).
    let tokenized = em_data::TokenizedPair::new(pair.clone());
    group.bench_with_input(
        BenchmarkId::from_parameter("perturb_set"),
        &tokenized,
        |b, tp| {
            b.iter(|| crew.perturbation_set(&matcher, tp).unwrap());
        },
    );
    let set = crew.perturbation_set(&matcher, &tokenized).unwrap();
    group.bench_with_input(
        BenchmarkId::from_parameter("cluster_tail"),
        &tokenized,
        |b, tp| {
            b.iter(|| crew.explain_clusters_with_set(tp, &set).unwrap());
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_tokenize,
    bench_extract_batch,
    bench_dense_kernels,
    bench_simd,
    bench_distance_matrix,
    bench_explain_single,
);
criterion_main!(benches);
