//! End-to-end explainer latency: one explanation of a fixed product pair by
//! each of the six systems (rule matcher as the model so the bench isolates
//! explainer overhead).

use crew_core::{Crew, CrewOptions, Explainer, MaskStrategy, PerturbOptions};
use em_baselines::{
    Certa, CertaOptions, Landmark, LandmarkOptions, Lemon, LemonOptions, Lime, LimeOptions, Mojito,
    MojitoOptions,
};
use em_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_data::Record;
use em_embed::{EmbeddingOptions, WordEmbeddings};
use em_matchers::RuleMatcher;
use std::sync::Arc;

const SAMPLES: usize = 128;

fn embeddings_for(pair: &em_data::EntityPair) -> Arc<WordEmbeddings> {
    let sentences: Vec<Vec<String>> = vec![
        em_text::tokenize(&pair.left().full_text()),
        em_text::tokenize(&pair.right().full_text()),
    ];
    Arc::new(
        WordEmbeddings::train(
            sentences.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 32,
                ..Default::default()
            },
        )
        .unwrap(),
    )
}

fn bench_explainers(c: &mut Criterion) {
    let mut group = c.benchmark_group("explain_end_to_end");
    group.sample_size(20);
    let matcher = RuleMatcher::uniform(4, 0.5).unwrap();
    for tokens in [30usize, 90] {
        let pair = em_synth::scaling_pair(tokens, 2);
        let emb = embeddings_for(&pair);
        let support = vec![
            Record::new(900, pair.left().values().to_vec()),
            Record::new(901, pair.right().values().to_vec()),
        ];
        let explainers: Vec<(&str, Box<dyn Explainer>)> = vec![
            (
                "crew",
                Box::new(Crew::new(
                    Arc::clone(&emb),
                    CrewOptions {
                        perturb: PerturbOptions {
                            samples: SAMPLES,
                            strategy: MaskStrategy::AttributeStratified,
                            seed: 1,
                            threads: 1,
                        },
                        ..Default::default()
                    },
                )),
            ),
            (
                "lime",
                Box::new(Lime::new(LimeOptions {
                    samples: SAMPLES,
                    ..Default::default()
                })),
            ),
            (
                "mojito",
                Box::new(Mojito::new(MojitoOptions {
                    samples: SAMPLES,
                    ..Default::default()
                })),
            ),
            (
                "landmark",
                Box::new(Landmark::new(LandmarkOptions {
                    samples_per_side: SAMPLES / 2,
                    ..Default::default()
                })),
            ),
            (
                "lemon",
                Box::new(Lemon::new(LemonOptions {
                    samples_per_side: SAMPLES / 2,
                    ..Default::default()
                })),
            ),
            (
                "certa",
                Box::new(Certa::new(support.clone(), CertaOptions::default()).unwrap()),
            ),
        ];
        for (name, explainer) in &explainers {
            group.bench_with_input(BenchmarkId::new(*name, tokens), &pair, |b, pair| {
                b.iter(|| explainer.explain(&matcher, pair).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_explainers);
criterion_main!(benches);
