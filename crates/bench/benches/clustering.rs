//! Microbenchmarks of the clustering substrate: agglomerative dendrogram
//! construction and k-medoids at word-count scales.

use em_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_cluster::{agglomerative, kmedoids, Constraints, Linkage};
use em_linalg::Matrix;
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};

fn random_metric(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
        .collect();
    Matrix::from_fn(n, n, |i, j| {
        let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
        (dx * dx + dy * dy).sqrt()
    })
}

fn bench_agglomerative(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerative");
    for n in [20usize, 60, 120] {
        let d = random_metric(n, 3);
        for linkage in [("average", Linkage::Average), ("ward", Linkage::Ward)] {
            group.bench_with_input(BenchmarkId::new(linkage.0, n), &d, |b, d| {
                b.iter(|| agglomerative(d, linkage.1, &Constraints::none()).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_constrained(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerative_constrained");
    for n in [20usize, 60] {
        let d = random_metric(n, 4);
        let constraints = Constraints {
            must_link: vec![(0, 1), (2, 3)],
            cannot_link: vec![(0, n - 1), (1, n - 2)],
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            b.iter(|| agglomerative(d, Linkage::Average, &constraints).unwrap());
        });
    }
    group.finish();
}

fn bench_kmedoids(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmedoids");
    for n in [20usize, 60] {
        let d = random_metric(n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            b.iter(|| kmedoids(d, 5, 1, 20).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_agglomerative,
    bench_constrained,
    bench_kmedoids
);
criterion_main!(benches);
