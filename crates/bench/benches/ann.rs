//! ANN subsystem benchmarks: LSH index build, top-k queries, and the
//! semantic distance computation exact-vs-ANN — the evidence that the
//! index kills the O(n²·d) all-pairs scan at large vocabularies.
//!
//! The vocabulary is clustered (cluster centers plus small jitter), the
//! neighbourhood structure trained embeddings actually have; uniform
//! random vectors are near-orthogonal in high dimension and would
//! benchmark the index on a workload it is not built for. A recall
//! check against the exact top-k runs once at setup and fails the bench
//! if the configured index drops below 0.95.

use em_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_embed::{
    semantic_distance_matrix_with, semantic_topk, AnnIndex, AnnOptions, SemanticBackend,
    SemanticMatrixOptions, WordEmbeddings,
};
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};

const DIMS: usize = 48;
const TOP_K: usize = 16;

/// Vocabulary size of the top-k comparison (the 10⁴-word headline) and
/// of the dense-matrix comparison (bounded by the n×n output buffer).
fn scales() -> (usize, usize) {
    if em_bench::harness::smoke_requested() {
        (2_000, 400)
    } else {
        (10_000, 2_000)
    }
}

fn clustered_vocab(n: usize, seed: u64) -> Vec<(String, Vec<f64>)> {
    let per = 25usize;
    let clusters = n.div_ceil(per);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vocab = Vec::with_capacity(n);
    'outer: for c in 0..clusters {
        let center: Vec<f64> = (0..DIMS).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for m in 0..per {
            if vocab.len() == n {
                break 'outer;
            }
            let v: Vec<f64> = center
                .iter()
                .map(|x| x + rng.gen_range(-0.05..0.05))
                .collect();
            vocab.push((format!("w{c}_{m}"), v));
        }
    }
    vocab
}

fn embeddings_of(vocab: &[(String, Vec<f64>)]) -> WordEmbeddings {
    WordEmbeddings::from_vectors(DIMS, vocab.iter().cloned()).expect("consistent dims")
}

fn ann_opts(backend: SemanticBackend) -> SemanticMatrixOptions {
    let mut opts = SemanticMatrixOptions {
        backend,
        neighbors: TOP_K,
        ..Default::default()
    };
    // Tuned for the clustered regime (see DESIGN.md, "ANN index"): longer
    // signatures cut random co-bucket collisions, which lets fewer tables
    // and a tighter re-rank cap reach the same recall — the audit below
    // holds the configuration to ≥ 0.95 against exact top-k.
    opts.ann.tables = 8;
    opts.ann.bits = 12;
    opts.ann.rerank = 128;
    opts
}

/// One-off recall audit of the benchmarked configuration over the full
/// vocabulary — one exact pass plus one ANN pass, the cost of a single
/// bench iteration each. The property tests cover the parameter sweep;
/// this guards the bench numbers from quoting a misconfigured index.
fn audit_recall(emb: &WordEmbeddings, words: &[String]) {
    let exact = semantic_topk(emb, words, 5, &ann_opts(SemanticBackend::Exact));
    let ann = semantic_topk(emb, words, 5, &ann_opts(SemanticBackend::Ann));
    let mut hit = 0usize;
    let mut total = 0usize;
    for (er, ar) in exact.neighbors.iter().zip(&ann.neighbors) {
        let approx: Vec<u32> = ar.iter().map(|&(j, _)| j).collect();
        hit += er.iter().filter(|&&(j, _)| approx.contains(&j)).count();
        total += er.len();
    }
    let recall = hit as f64 / total.max(1) as f64;
    assert!(recall >= 0.95, "benchmarked index recall {recall} < 0.95");
    eprintln!("  (recall audit over {} rows: {recall:.3})", words.len());
}

fn bench_build(c: &mut Criterion) {
    let (n, _) = scales();
    let vectors: Vec<Vec<f64>> = clustered_vocab(n, 41).into_iter().map(|(_, v)| v).collect();
    let mut group = c.benchmark_group("ann_build");
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::from_parameter(n), &vectors, |b, vecs| {
        b.iter(|| AnnIndex::build(vecs, &AnnOptions::default()));
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let (n, _) = scales();
    let vocab = clustered_vocab(n, 41);
    let vectors: Vec<Vec<f64>> = vocab.iter().map(|(_, v)| v.clone()).collect();
    let index = AnnIndex::build(&vectors, &AnnOptions::default());
    let mut group = c.benchmark_group("ann_query");
    group.sample_size(10);
    // 200 point queries per iteration, spread across the id range.
    group.bench_with_input(BenchmarkId::from_parameter(n), &index, |b, index| {
        b.iter(|| {
            let mut found = 0usize;
            for q in 0..200u32 {
                let id = q * (index.len() as u32 / 200);
                found += index.top_k_of(id, TOP_K).len();
            }
            found
        });
    });
    group.finish();
}

fn bench_semantic_topk(c: &mut Criterion) {
    let (n, _) = scales();
    let vocab = clustered_vocab(n, 41);
    let emb = embeddings_of(&vocab);
    let words: Vec<String> = vocab.iter().map(|(w, _)| w.clone()).collect();
    audit_recall(&emb, &words);
    let mut group = c.benchmark_group("semantic_topk");
    group.sample_size(3);
    for backend in [SemanticBackend::Exact, SemanticBackend::Ann] {
        let id = if backend == SemanticBackend::Exact {
            "exact"
        } else {
            "ann"
        };
        group.bench_with_input(BenchmarkId::new(id, n), &words, |b, words| {
            let opts = ann_opts(backend);
            b.iter(|| semantic_topk(&emb, words, TOP_K, &opts));
        });
    }
    group.finish();
}

fn bench_semantic_matrix(c: &mut Criterion) {
    let (_, m) = scales();
    let vocab = clustered_vocab(m, 43);
    let emb = embeddings_of(&vocab);
    let words: Vec<String> = vocab.iter().map(|(w, _)| w.clone()).collect();
    let mut group = c.benchmark_group("semantic_matrix");
    group.sample_size(3);
    for backend in [SemanticBackend::Exact, SemanticBackend::Ann] {
        let id = if backend == SemanticBackend::Exact {
            "exact"
        } else {
            "ann"
        };
        group.bench_with_input(BenchmarkId::new(id, m), &words, |b, words| {
            let opts = ann_opts(backend);
            b.iter(|| semantic_distance_matrix_with(&emb, words, &opts));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_query,
    bench_semantic_topk,
    bench_semantic_matrix
);
criterion_main!(benches);
