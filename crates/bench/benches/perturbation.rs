//! Microbenchmarks of the perturbation engine: mask sampling and
//! mask-apply/model-query throughput at several pair lengths.

use crew_core::{sample_masks, MaskStrategy, PerturbOptions};
use em_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_data::TokenizedPair;
use em_matchers::{Matcher, RuleMatcher};

fn bench_mask_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_sampling");
    for tokens in [20usize, 80, 160] {
        let pair = em_synth::scaling_pair(tokens, 1);
        let tp = TokenizedPair::new(pair);
        for strategy in [
            ("uniform", MaskStrategy::UniformCount),
            ("stratified", MaskStrategy::AttributeStratified),
        ] {
            group.bench_with_input(BenchmarkId::new(strategy.0, tokens), &tp, |b, tp| {
                let opts = PerturbOptions {
                    samples: 256,
                    strategy: strategy.1,
                    seed: 7,
                    threads: 1,
                };
                b.iter(|| sample_masks(tp, &opts).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_mask_apply_and_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_query");
    let matcher = RuleMatcher::uniform(4, 0.5).unwrap();
    for tokens in [20usize, 80, 160] {
        let pair = em_synth::scaling_pair(tokens, 1);
        let tp = TokenizedPair::new(pair);
        let opts = PerturbOptions {
            samples: 256,
            seed: 7,
            threads: 1,
            ..Default::default()
        };
        let masks = sample_masks(&tp, &opts).unwrap();
        group.bench_with_input(BenchmarkId::new("rules_256", tokens), &tp, |b, tp| {
            b.iter(|| {
                let mut acc = 0.0;
                for m in &masks {
                    acc += matcher.predict_proba(&tp.apply_mask(m));
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mask_sampling, bench_mask_apply_and_query);
criterion_main!(benches);
