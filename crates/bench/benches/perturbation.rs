//! Microbenchmarks of the perturbation engine: mask sampling and
//! mask-apply/model-query throughput at several pair lengths.

use crew_core::{query_masks, sample_masks, MaskStrategy, PerturbOptions};
use em_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_data::TokenizedPair;
use em_matchers::{LogisticMatcher, Matcher, MlpMatcher, RuleMatcher, TrainOptions};

fn bench_mask_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_sampling");
    for tokens in [20usize, 80, 160] {
        let pair = em_synth::scaling_pair(tokens, 1);
        let tp = TokenizedPair::new(pair);
        for strategy in [
            ("uniform", MaskStrategy::UniformCount),
            ("stratified", MaskStrategy::AttributeStratified),
        ] {
            group.bench_with_input(BenchmarkId::new(strategy.0, tokens), &tp, |b, tp| {
                let opts = PerturbOptions {
                    samples: 256,
                    strategy: strategy.1,
                    seed: 7,
                    threads: 1,
                };
                b.iter(|| sample_masks(tp, &opts).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_mask_apply_and_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_query");
    let matcher = RuleMatcher::uniform(4, 0.5).unwrap();
    for tokens in [20usize, 80, 160] {
        let pair = em_synth::scaling_pair(tokens, 1);
        let tp = TokenizedPair::new(pair);
        let opts = PerturbOptions {
            samples: 256,
            seed: 7,
            threads: 1,
            ..Default::default()
        };
        let masks = sample_masks(&tp, &opts).unwrap();
        group.bench_with_input(BenchmarkId::new("rules_256", tokens), &tp, |b, tp| {
            b.iter(|| {
                let mut acc = 0.0;
                for m in &masks {
                    acc += matcher.predict_proba(&tp.apply_mask(m));
                }
                acc
            });
        });
    }
    group.finish();
}

/// End-to-end perturbation throughput against trained matchers: the
/// acceptance-criterion workload (256 samples, 4 threads) on the logistic
/// and MLP models whose query cost dominates every experiment.
fn bench_trained_matcher_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb_engine");
    group.sample_size(10);
    let cfg = em_synth::GeneratorConfig {
        entities: 120,
        pairs: 400,
        match_rate: 0.25,
        hard_negative_rate: 0.5,
        seed: 11,
    };
    let dataset = em_synth::generate(em_synth::Family::Restaurants, cfg).unwrap();
    let split = dataset.split(0.7, 0.15, 11).unwrap();
    let logistic = LogisticMatcher::fit(&split.train, &split.validation, TrainOptions::default())
        .expect("logistic training");
    let mlp = MlpMatcher::fit(&split.train, &split.validation, TrainOptions::default())
        .expect("mlp training");
    // The longest test pair: a representative (not degenerate) workload.
    let pair = split
        .test
        .examples()
        .iter()
        .max_by_key(|ex| ex.pair.token_count())
        .unwrap()
        .pair
        .clone();
    let tp = TokenizedPair::new(pair);
    let opts = PerturbOptions {
        samples: 256,
        seed: 7,
        threads: 4,
        ..Default::default()
    };
    let masks = sample_masks(&tp, &opts).unwrap();
    let matchers: [(&str, &dyn Matcher); 2] = [("logistic_256x4", &logistic), ("mlp_256x4", &mlp)];
    for (name, matcher) in matchers {
        group.bench_with_input(BenchmarkId::from_parameter(name), &tp, |b, tp| {
            b.iter(|| query_masks(tp, &masks, matcher, 4));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mask_sampling,
    bench_mask_apply_and_query,
    bench_trained_matcher_query
);
criterion_main!(benches);
