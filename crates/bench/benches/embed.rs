//! Microbenchmarks of the offline (corpus) stage: co-occurrence counting,
//! the PPMI + truncated-SVD factorisation, and end-to-end embedding
//! training on the standard synthetic corpus — the dataset-preparation tax
//! every experiment pays before the first pair is explained.

use em_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_embed::{CoocOptions, Cooccurrence, EmbeddingOptions, WordEmbeddings};

/// The training corpus of the standard synthetic benchmark: one sentence
/// per record of the train split (the same corpus `train_on_dataset`
/// consumes inside every experiment).
fn standard_corpus() -> Vec<Vec<String>> {
    let dataset = em_synth::generate(
        em_synth::Family::Products,
        em_synth::GeneratorConfig::default(),
    )
    .expect("standard synthetic dataset");
    let split = dataset.split(0.7, 0.15, 7).expect("split");
    let mut sentences = Vec::with_capacity(split.train.len() * 2);
    for ex in split.train.examples() {
        for rec in [ex.pair.left(), ex.pair.right()] {
            sentences.push(em_text::tokenize(&rec.full_text()));
        }
    }
    sentences
}

fn bench_cooc(c: &mut Criterion) {
    let corpus = standard_corpus();
    let mut group = c.benchmark_group("cooc");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("standard"), &corpus, |b, s| {
        b.iter(|| Cooccurrence::build(s.iter().map(|v| v.as_slice()), CoocOptions::default()));
    });
    group.finish();
}

fn bench_ppmi_svd(c: &mut Criterion) {
    let corpus = standard_corpus();
    let cooc = Cooccurrence::build(corpus.iter().map(|v| v.as_slice()), CoocOptions::default());
    eprintln!(
        "  (standard corpus vocabulary: {} words)",
        cooc.vocab().len()
    );
    let mut group = c.benchmark_group("ppmi_svd");
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::from_parameter("standard"), &cooc, |b, cooc| {
        b.iter(|| {
            let ppmi = cooc.ppmi_matrix(0.75);
            em_linalg::randomized_svd(
                &ppmi,
                48.min(cooc.vocab().len()),
                em_linalg::SvdOptions {
                    seed: 0xe4bed,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_train(c: &mut Criterion) {
    let corpus = standard_corpus();
    let mut group = c.benchmark_group("embed_train");
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::from_parameter("standard"), &corpus, |b, s| {
        b.iter(|| {
            WordEmbeddings::train(s.iter().map(|v| v.as_slice()), EmbeddingOptions::default())
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cooc, bench_ppmi_svd, bench_train);
criterion_main!(benches);
