//! Matcher substrate benchmarks: feature extraction, embedding training
//! and inference throughput for each model family.

use em_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use em_eval::{EvalContext, MatcherKind};
use em_synth::{Family, GeneratorConfig};

fn small_ctx() -> EvalContext {
    EvalContext::prepare(
        Family::Restaurants,
        GeneratorConfig {
            entities: 80,
            pairs: 200,
            match_rate: 0.25,
            ..Default::default()
        },
    )
    .unwrap()
}

fn bench_inference(c: &mut Criterion) {
    let ctx = small_ctx();
    let pairs: Vec<em_data::EntityPair> = ctx
        .split
        .test
        .examples()
        .iter()
        .take(20)
        .map(|e| e.pair.clone())
        .collect();
    let mut group = c.benchmark_group("matcher_inference_20pairs");
    for kind in MatcherKind::all() {
        let matcher = ctx.matcher(kind).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for p in pairs {
                        acc += matcher.predict_proba(p);
                    }
                    acc
                });
            },
        );
    }
    group.finish();
}

fn bench_embedding_training(c: &mut Criterion) {
    let ctx = small_ctx();
    let mut group = c.benchmark_group("embedding_training");
    group.sample_size(10);
    group.bench_function("ppmi_svd_train_split", |b| {
        b.iter(|| {
            em_embed::WordEmbeddings::train_on_dataset(
                &ctx.split.train,
                em_embed::EmbeddingOptions::default(),
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_embedding_training);
criterion_main!(benches);
