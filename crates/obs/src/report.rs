//! The aggregated trace: a stable parent/child timing tree plus counter
//! and gauge tables, with JSON / markdown / deterministic-structure views.
//!
//! A [`TraceReport`] is produced by [`crate::collect`] from the per-thread
//! span buffers. Aggregation is *deterministic by construction* for the
//! fields that do not measure wall-clock: span paths, call counts,
//! counter sums and gauge maxima depend only on the work performed, never
//! on which thread performed it or in which order, so two runs of the
//! same seeded workload at different thread or job counts produce
//! bitwise-identical [`TraceReport::structure`] strings. Nanosecond
//! totals are the one legitimately nondeterministic column.

/// One aggregated span node (all threads merged), identified by its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Slash-joined path from the root, e.g. `store/explain/crew/cluster`.
    pub path: String,
    /// Nesting depth (number of ancestors).
    pub depth: usize,
    /// Number of times a span at this path was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds spent inside spans at this path.
    pub total_ns: u64,
    /// `total_ns` minus the children's `total_ns`, saturating at zero
    /// (children running concurrently on pool workers can accumulate more
    /// wall-clock than their parent).
    pub self_ns: u64,
}

/// The rolled-up observation state of a traced run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Aggregated spans sorted by path (children immediately follow their
    /// parent in depth-first order).
    pub spans: Vec<SpanStat>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Max-aggregated gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl TraceReport {
    /// True when nothing was recorded (obs disabled or no probes hit).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.gauges.is_empty()
    }

    /// The schedule-independent projection: every path with its call
    /// count, plus counters and gauges — everything except wall-clock.
    /// Two runs of the same seeded workload must produce identical
    /// structure strings at any thread or job count.
    pub fn structure(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!("span {} x{}\n", s.path, s.count));
        }
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge {name} = {v}\n"));
        }
        out
    }

    /// Total nanoseconds across root spans whose path starts with
    /// `prefix` (pass `""` for all roots).
    pub fn root_total_ns(&self, prefix: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.depth == 0 && s.path.starts_with(prefix))
            .map(|s| s.total_ns)
            .sum()
    }

    /// Look up one aggregated span by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Serialise to the `TRACE_*.json` schema (hand-rolled; the workspace
    /// is dependency-free).
    pub fn to_json(&self, name: &str) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": {},\n", json_string(name)));
        out.push_str("  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"path\": {}, \"depth\": {}, \"count\": {}, \
                 \"total_ns\": {}, \"self_ns\": {}}}{}\n",
                json_string(&s.path),
                s.depth,
                s.count,
                s.total_ns,
                s.self_ns,
                if i + 1 == self.spans.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"counters\": [\n");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"value\": {}}}{}\n",
                json_string(name),
                v,
                if i + 1 == self.counters.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n  \"gauges\": [\n");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"value\": {}}}{}\n",
                json_string(name),
                v,
                if i + 1 == self.gauges.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Render the per-stage timing table (markdown), indenting children
    /// under their parents. `min_ns` hides stages below the floor.
    pub fn to_markdown(&self, min_ns: u64) -> String {
        let mut out = String::from("| stage | calls | total | self |\n|---|---:|---:|---:|\n");
        for s in &self.spans {
            if s.total_ns < min_ns {
                continue;
            }
            let label = format!(
                "{}{}",
                "&nbsp;&nbsp;".repeat(s.depth),
                s.path.rsplit('/').next().unwrap_or(&s.path)
            );
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                label,
                s.count,
                format_ns(s.total_ns),
                format_ns(s.self_ns)
            ));
        }
        out
    }
}

/// Human-readable nanoseconds.
pub fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceReport {
        TraceReport {
            spans: vec![
                SpanStat {
                    path: "a".into(),
                    depth: 0,
                    count: 2,
                    total_ns: 1_000_000,
                    self_ns: 400_000,
                },
                SpanStat {
                    path: "a/b \"q\"".into(),
                    depth: 1,
                    count: 4,
                    total_ns: 600_000,
                    self_ns: 600_000,
                },
            ],
            counters: vec![("hits".into(), 7)],
            gauges: vec![("batch".into(), 32)],
        }
    }

    #[test]
    fn structure_covers_counts_not_times() {
        let r = sample();
        let s = r.structure();
        assert!(s.contains("span a x2"));
        assert!(s.contains("counter hits = 7"));
        assert!(s.contains("gauge batch = 32"));
        assert!(!s.contains("1000000"), "structure must exclude wall-clock");
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let json = sample().to_json("unit");
        assert!(json.contains("\"name\": \"unit\""));
        assert!(json.contains("\\\"q\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn markdown_indents_children_and_filters() {
        let md = sample().to_markdown(0);
        assert!(md.contains("| a | 2 |"));
        assert!(md.contains("&nbsp;&nbsp;b \"q\""));
        let filtered = sample().to_markdown(700_000);
        assert!(!filtered.contains("b \"q\""));
    }

    #[test]
    fn root_totals_sum_roots_only() {
        let r = sample();
        assert_eq!(r.root_total_ns(""), 1_000_000);
        assert_eq!(r.root_total_ns("a"), 1_000_000);
        assert_eq!(r.root_total_ns("z"), 0);
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert_eq!(format_ns(12), "12 ns");
        assert_eq!(format_ns(1_500), "1.5 µs");
        assert_eq!(format_ns(2_500_000), "2.50 ms");
        assert_eq!(format_ns(3_200_000_000), "3.20 s");
    }
}
