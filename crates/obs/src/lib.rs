//! # em-obs
//!
//! A zero-external-dep observability layer for the CREW workspace:
//! thread-aware hierarchical spans ([`span!`] RAII guards), monotonic
//! [`counter!`]s and max-[`gauge!`]s, and a deterministic [`TraceReport`]
//! aggregator that rolls per-thread buffers into a stable parent/child
//! timing tree with call counts.
//!
//! ## Cost model
//!
//! Observation is off on two independent axes:
//!
//! * **Runtime**: recording is gated by a process-wide flag
//!   ([`set_enabled`]), off by default. A disabled probe is one relaxed
//!   atomic load — tier-1 builds carry the probes but pay nothing
//!   measurable for them.
//! * **Compile time**: building `em-obs` with the `noop` feature swaps
//!   every probe for an empty inline stub with the identical API, so the
//!   whole layer compiles to true no-ops (the `obs-noop` passthrough
//!   feature on `em-bench` applies this to the full workspace).
//!
//! ## Span model
//!
//! A span is entered with [`span!`] (child of the thread's current span)
//! or [`root_span!`] (forced to the root). Guards restore the previous
//! span on drop, so trees are balanced by construction. Names are interned
//! into a global node table keyed by `(parent, name)`: the same name under
//! two parents is two nodes, and recursion folds into one node per path.
//!
//! Spans cross threads explicitly: a scheduler captures
//! [`current_context`] at submission and wraps task execution in
//! [`enter_context`], so work fanned out over `em-pool` keeps accumulating
//! under the submitting span's path. Work whose *scheduling* is
//! nondeterministic (e.g. which experiment pays a shared store miss) uses
//! [`root_span!`] at the boundary so the aggregated tree stays
//! schedule-independent.
//!
//! ## Determinism
//!
//! Per-thread buffers record `(node → count, total_ns)`; [`collect`]
//! merges them by node and sorts by path. Counts, paths, counter sums and
//! gauge maxima depend only on the work performed — the
//! [`TraceReport::structure`] projection is bitwise-identical across
//! thread and job counts for the same seeded workload. Only `*_ns`
//! columns vary between runs.

pub mod report;

pub use report::{format_ns, SpanStat, TraceReport};

#[cfg(not(feature = "noop"))]
mod record {
    use crate::report::{SpanStat, TraceReport};
    use std::cell::{Cell, OnceCell};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    /// Sentinel node id of the (implicit, unnamed) root.
    const ROOT: u32 = 0;

    static ENABLED: AtomicBool = AtomicBool::new(false);

    /// Turn recording on or off process-wide. Flip only at quiescent
    /// points (no open spans) — guards opened while enabled still record
    /// on drop.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::SeqCst);
    }

    /// Whether probes currently record.
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Interned span tree: node ids are 1-based indices into `nodes`;
    /// parent `ROOT` marks a top-level span.
    #[derive(Default)]
    struct NodeTable {
        nodes: Vec<(u32, String)>,
        index: HashMap<(u32, String), u32>,
    }

    fn nodes() -> &'static Mutex<NodeTable> {
        static NODES: OnceLock<Mutex<NodeTable>> = OnceLock::new();
        NODES.get_or_init(|| Mutex::new(NodeTable::default()))
    }

    fn intern(parent: u32, name: &str) -> u32 {
        let mut table = nodes().lock().expect("obs node table poisoned");
        if let Some(&id) = table.index.get(&(parent, name.to_string())) {
            return id;
        }
        table.nodes.push((parent, name.to_string()));
        let id = table.nodes.len() as u32; // 1-based
        table.index.insert((parent, name.to_string()), id);
        id
    }

    #[derive(Debug, Clone, Copy, Default)]
    struct Stat {
        count: u64,
        total_ns: u64,
    }

    /// One thread's span accumulator. The owner locks it briefly per span
    /// exit (uncontended); [`collect`] locks all registered buffers.
    type Buf = Arc<Mutex<HashMap<u32, Stat>>>;

    fn buffers() -> &'static Mutex<Vec<Buf>> {
        static BUFFERS: OnceLock<Mutex<Vec<Buf>>> = OnceLock::new();
        BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static CURRENT: Cell<u32> = const { Cell::new(ROOT) };
        static LOCAL: OnceCell<Buf> = const { OnceCell::new() };
    }

    fn local_buf() -> Buf {
        LOCAL.with(|cell| {
            Arc::clone(cell.get_or_init(|| {
                let buf: Buf = Arc::new(Mutex::new(HashMap::new()));
                buffers()
                    .lock()
                    .expect("obs buffer registry poisoned")
                    .push(Arc::clone(&buf));
                buf
            }))
        })
    }

    fn counters() -> &'static Mutex<HashMap<String, u64>> {
        static COUNTERS: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
        COUNTERS.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn gauges() -> &'static Mutex<HashMap<String, u64>> {
        static GAUGES: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
        GAUGES.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// RAII span guard: records elapsed time on drop and restores the
    /// thread's previous span. Inert when recording is disabled.
    pub struct SpanGuard {
        active: Option<(u32, u32, Instant)>,
    }

    fn enter(parent: u32, name: &str) -> SpanGuard {
        let prev = CURRENT.with(|c| c.get());
        let node = intern(parent, name);
        CURRENT.with(|c| c.set(node));
        SpanGuard {
            active: Some((node, prev, Instant::now())),
        }
    }

    /// Enter a span as a child of the thread's current span.
    pub fn span(name: &str) -> SpanGuard {
        if !is_enabled() {
            return SpanGuard { active: None };
        }
        let parent = CURRENT.with(|c| c.get());
        enter(parent, name)
    }

    /// Enter a span at the root, regardless of the current span — for
    /// boundaries where the *caller* is schedule-dependent (shared-store
    /// misses) and nesting under it would make the tree nondeterministic.
    pub fn span_root(name: &str) -> SpanGuard {
        if !is_enabled() {
            return SpanGuard { active: None };
        }
        enter(ROOT, name)
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some((node, prev, start)) = self.active.take() {
                let ns = start.elapsed().as_nanos() as u64;
                {
                    let buf = local_buf();
                    let mut map = buf.lock().expect("obs thread buffer poisoned");
                    let stat = map.entry(node).or_default();
                    stat.count += 1;
                    stat.total_ns += ns;
                }
                CURRENT.with(|c| c.set(prev));
            }
        }
    }

    /// A capture of the current span position, for crossing threads.
    #[derive(Debug, Clone, Copy)]
    pub struct SpanContext(u32);

    /// The calling thread's current span position (cheap; valid even when
    /// recording is disabled, where it is simply the root).
    pub fn current_context() -> SpanContext {
        SpanContext(CURRENT.with(|c| c.get()))
    }

    /// Guard restoring the previous span position on drop.
    pub struct ContextGuard {
        prev: u32,
    }

    /// Adopt `ctx` as this thread's span position until the guard drops —
    /// schedulers wrap task execution in this so fanned-out work keeps
    /// accumulating under the submitting span.
    pub fn enter_context(ctx: SpanContext) -> ContextGuard {
        let prev = CURRENT.with(|c| c.get());
        CURRENT.with(|c| c.set(ctx.0));
        ContextGuard { prev }
    }

    impl Drop for ContextGuard {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.prev));
        }
    }

    /// Add `n` to the monotonic counter `name`.
    pub fn counter_add(name: &str, n: u64) {
        if !is_enabled() {
            return;
        }
        let mut map = counters().lock().expect("obs counters poisoned");
        match map.get_mut(name) {
            Some(v) => *v += n,
            None => {
                map.insert(name.to_string(), n);
            }
        }
    }

    /// Raise the gauge `name` to at least `v` (max-aggregation: the only
    /// last-value-free combine that is deterministic across threads).
    pub fn gauge_max(name: &str, v: u64) {
        if !is_enabled() {
            return;
        }
        let mut map = gauges().lock().expect("obs gauges poisoned");
        match map.get_mut(name) {
            Some(old) => *old = (*old).max(v),
            None => {
                map.insert(name.to_string(), v);
            }
        }
    }

    /// Clear all recorded statistics (span stats, counters, gauges). The
    /// node table survives so ids held by open guards stay valid; nodes
    /// with no post-reset activity simply drop out of the next report.
    /// Call at quiescent points only.
    pub fn reset() {
        for buf in buffers()
            .lock()
            .expect("obs buffer registry poisoned")
            .iter()
        {
            buf.lock().expect("obs thread buffer poisoned").clear();
        }
        counters().lock().expect("obs counters poisoned").clear();
        gauges().lock().expect("obs gauges poisoned").clear();
    }

    /// Roll every thread's buffer into one [`TraceReport`]. Call after the
    /// traced workload has quiesced (open spans have not yet recorded).
    pub fn collect() -> TraceReport {
        // Merge per-thread stats by node.
        let mut merged: HashMap<u32, Stat> = HashMap::new();
        for buf in buffers()
            .lock()
            .expect("obs buffer registry poisoned")
            .iter()
        {
            for (&node, stat) in buf.lock().expect("obs thread buffer poisoned").iter() {
                let m = merged.entry(node).or_default();
                m.count += stat.count;
                m.total_ns += stat.total_ns;
            }
        }
        let table = nodes().lock().expect("obs node table poisoned");
        // Resolve each active node's full path and depth.
        let path_of = |mut id: u32| -> (String, usize) {
            let mut parts: Vec<&str> = Vec::new();
            while id != ROOT {
                let (parent, ref name) = table.nodes[(id - 1) as usize];
                parts.push(name);
                id = parent;
            }
            parts.reverse();
            (parts.join("/"), parts.len().saturating_sub(1))
        };
        let mut spans: Vec<(u32, SpanStat)> = merged
            .iter()
            .map(|(&id, stat)| {
                let (path, depth) = path_of(id);
                (
                    id,
                    SpanStat {
                        path,
                        depth,
                        count: stat.count,
                        total_ns: stat.total_ns,
                        self_ns: stat.total_ns,
                    },
                )
            })
            .collect();
        spans.sort_by(|a, b| a.1.path.cmp(&b.1.path));
        // Subtract each node's children from its self time.
        let child_sum: HashMap<u32, u64> = {
            let mut sums: HashMap<u32, u64> = HashMap::new();
            for (id, stat) in &spans {
                let parent = table.nodes[(*id - 1) as usize].0;
                if parent != ROOT {
                    *sums.entry(parent).or_default() += stat.total_ns;
                }
            }
            sums
        };
        let spans = spans
            .into_iter()
            .map(|(id, mut stat)| {
                stat.self_ns = stat
                    .total_ns
                    .saturating_sub(child_sum.get(&id).copied().unwrap_or(0));
                stat
            })
            .collect();

        let mut counters: Vec<(String, u64)> = counters()
            .lock()
            .expect("obs counters poisoned")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, u64)> = gauges()
            .lock()
            .expect("obs gauges poisoned")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        gauges.sort();
        TraceReport {
            spans,
            counters,
            gauges,
        }
    }
}

#[cfg(feature = "noop")]
mod record {
    //! The compile-time-disabled probe set: every entry point exists with
    //! the same signature and an empty inline body, so instrumented crates
    //! build unchanged and the optimiser erases the layer entirely.
    use crate::report::TraceReport;

    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    pub struct SpanGuard;

    #[inline(always)]
    pub fn span(_name: &str) -> SpanGuard {
        SpanGuard
    }

    #[inline(always)]
    pub fn span_root(_name: &str) -> SpanGuard {
        SpanGuard
    }

    #[derive(Debug, Clone, Copy)]
    pub struct SpanContext;

    #[inline(always)]
    pub fn current_context() -> SpanContext {
        SpanContext
    }

    pub struct ContextGuard;

    #[inline(always)]
    pub fn enter_context(_ctx: SpanContext) -> ContextGuard {
        ContextGuard
    }

    #[inline(always)]
    pub fn counter_add(_name: &str, _n: u64) {}

    #[inline(always)]
    pub fn gauge_max(_name: &str, _v: u64) {}

    #[inline(always)]
    pub fn reset() {}

    #[inline(always)]
    pub fn collect() -> TraceReport {
        TraceReport::default()
    }
}

pub use record::{
    collect, counter_add, current_context, enter_context, gauge_max, is_enabled, reset,
    set_enabled, span, span_root, ContextGuard, SpanContext, SpanGuard,
};

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where the proc filesystem is
/// unavailable or lacks the field (non-Linux, restricted mounts). The
/// `None` is deliberate: a long-lived server reporting RSS must be able
/// to tell "no measurement" apart from "0 bytes", so callers decide
/// whether to skip the row or warn instead of gating on a bogus zero.
/// A measurement utility rather than a recording probe, so it is live
/// even under the `noop` feature.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Extract `VmHWM` (in bytes) from `/proc/self/status`-formatted text.
/// Missing field, empty value, or a malformed number all yield `None` —
/// never a panic, never a silent 0.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let rest = status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))?;
    let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

/// Enter a span as a child of the thread's current span:
/// `let _g = em_obs::span!("crew/perturb");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Enter a span at the root of the trace tree (schedule-independent
/// anchor for work whose caller varies between runs).
#[macro_export]
macro_rules! root_span {
    ($name:expr) => {
        $crate::span_root($name)
    };
}

/// Add to a monotonic counter: `em_obs::counter!("perturb/pairs", n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {
        $crate::counter_add($name, $n)
    };
}

/// Raise a max-gauge: `em_obs::gauge!("perturb/batch", size)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {
        $crate::gauge_max($name, $v)
    };
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Obs state is process-global; unit tests serialize on this lock and
    /// reset around each body.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        set_enabled(true);
        reset();
        guard
    }

    fn finish() -> TraceReport {
        let report = collect();
        set_enabled(false);
        report
    }

    #[test]
    fn nested_spans_build_a_path_tree() {
        let _g = guard();
        {
            let _a = span!("outer");
            {
                let _b = span!("inner");
            }
            {
                let _b = span!("inner");
            }
        }
        let report = finish();
        let outer = report.span("outer").expect("outer span recorded");
        let inner = report.span("outer/inner").expect("inner span nested");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
    }

    #[test]
    fn root_span_ignores_ambient_parent() {
        let _g = guard();
        {
            let _a = span!("ambient");
            let _b = root_span!("anchored");
        }
        let report = finish();
        assert!(report.span("anchored").is_some());
        assert!(report.span("ambient/anchored").is_none());
    }

    #[test]
    fn same_name_under_distinct_parents_is_distinct_nodes() {
        let _g = guard();
        {
            let _a = span!("left");
            let _c = span!("shared");
        }
        {
            let _b = span!("right");
            let _c = span!("shared");
        }
        let report = finish();
        assert!(report.span("left/shared").is_some());
        assert!(report.span("right/shared").is_some());
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = guard();
        set_enabled(false);
        {
            let _a = span!("ghost");
            counter!("ghost/count", 5);
            gauge!("ghost/gauge", 5);
        }
        set_enabled(true);
        let report = finish();
        assert!(report.is_empty(), "disabled probes must not record");
    }

    #[test]
    fn counters_sum_and_gauges_max() {
        let _g = guard();
        counter!("c", 3);
        counter!("c", 4);
        gauge!("g", 9);
        gauge!("g", 2);
        let report = finish();
        assert_eq!(report.counters, vec![("c".to_string(), 7)]);
        assert_eq!(report.gauges, vec![("g".to_string(), 9)]);
    }

    #[test]
    fn context_propagation_carries_spans_across_threads() {
        let _g = guard();
        {
            let _a = span!("submit");
            let ctx = current_context();
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        let _adopt = enter_context(ctx);
                        let _task = span!("task");
                    });
                }
            });
        }
        let report = finish();
        let task = report.span("submit/task").expect("tasks nest under submit");
        assert_eq!(task.count, 2);
        assert!(report.span("task").is_none());
    }

    #[test]
    fn reset_clears_stats_but_keeps_paths_valid() {
        let _g = guard();
        {
            let _a = span!("before");
        }
        reset();
        {
            let _a = span!("after");
        }
        let report = finish();
        assert!(report.span("before").is_none());
        assert!(report.span("after").is_some());
    }

    #[test]
    fn parse_vm_hwm_reads_a_normal_status_file() {
        let status = "Name:\tem-serve\nVmPeak:\t  123456 kB\nVmHWM:\t   2048 kB\nThreads:\t4\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
    }

    #[test]
    fn parse_vm_hwm_degrades_to_none_not_zero() {
        // Status files without VmHWM (non-Linux shims, restricted proc
        // mounts) and malformed values must be distinguishable from a
        // genuine 0-byte measurement.
        for bad in [
            "",
            "Name:\tx\nThreads:\t1\n",
            "VmHWM:\n",
            "VmHWM:\t not-a-number kB\n",
            "VmHWM:\t kB\n",
            " VmHWM:\t12 kB\n",
        ] {
            assert_eq!(parse_vm_hwm(bad), None, "{bad:?} should yield None");
        }
        assert_eq!(parse_vm_hwm("VmHWM:\t0 kB\n"), Some(0));
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        // On this CI platform /proc exists: a live process has touched
        // at least a megabyte.
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 1 << 20, "implausibly small peak RSS: {rss}");
        }
    }
}
