//! Embedding serialization: a plain text format (`word v1 v2 …` per line,
//! word2vec-style with a `rows dims` header) so trained embeddings can be
//! cached across experiment runs or inspected with standard tools.

use crate::embeddings::WordEmbeddings;
use std::collections::HashMap;

/// Serialise embeddings to the text format.
pub fn to_text(embeddings: &WordEmbeddings) -> String {
    let mut words: Vec<&str> = embeddings.words().collect();
    words.sort_unstable();
    let mut out = format!("{} {}\n", words.len(), embeddings.dimensions());
    for w in words {
        out.push_str(w);
        for v in embeddings.vector(w) {
            // 9 significant digits round-trip f64 well enough for cosine
            // queries while keeping files readable.
            out.push_str(&format!(" {v:.9e}"));
        }
        out.push('\n');
    }
    out
}

/// Parse embeddings from the text format.
pub fn from_text(text: &str) -> Result<WordEmbeddings, crate::EmbedError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(crate::EmbedError::ParseError {
        line: 1,
        message: "missing header".to_string(),
    })?;
    let mut parts = header.split_whitespace();
    let rows: usize =
        parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(crate::EmbedError::ParseError {
                line: 1,
                message: "bad row count".to_string(),
            })?;
    let dims: usize =
        parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(crate::EmbedError::ParseError {
                line: 1,
                message: "bad dims".to_string(),
            })?;
    if dims == 0 {
        return Err(crate::EmbedError::InvalidDimensions(0));
    }
    let mut by_word = HashMap::with_capacity(rows);
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let word = fields
            .next()
            .ok_or(crate::EmbedError::ParseError {
                line: i + 2,
                message: "empty line in body".to_string(),
            })?
            .to_string();
        let vector: Result<Vec<f64>, _> = fields.map(|f| f.parse::<f64>()).collect();
        let vector = vector.map_err(|e| crate::EmbedError::ParseError {
            line: i + 2,
            message: format!("bad float: {e}"),
        })?;
        if vector.len() != dims {
            return Err(crate::EmbedError::ParseError {
                line: i + 2,
                message: format!("expected {dims} values, got {}", vector.len()),
            });
        }
        by_word.insert(word, vector);
    }
    if by_word.len() != rows {
        return Err(crate::EmbedError::ParseError {
            line: 1,
            message: format!("header claims {rows} rows, found {}", by_word.len()),
        });
    }
    Ok(WordEmbeddings::from_parts(dims, by_word))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embeddings::EmbeddingOptions;

    fn trained() -> WordEmbeddings {
        let corpus: Vec<Vec<String>> = ["alpha beta gamma", "beta gamma delta", "alpha delta"]
            .iter()
            .map(|s| em_text::tokenize(s))
            .collect();
        WordEmbeddings::train(
            corpus.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 6,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_similarities() {
        let e = trained();
        let text = to_text(&e);
        let e2 = from_text(&text).unwrap();
        assert_eq!(e2.dimensions(), e.dimensions());
        assert_eq!(e2.vocab_size(), e.vocab_size());
        for (a, b) in [("alpha", "beta"), ("gamma", "delta"), ("alpha", "alpha")] {
            let s1 = e.similarity(a, b);
            let s2 = e2.similarity(a, b);
            assert!((s1 - s2).abs() < 1e-6, "{a}/{b}: {s1} vs {s2}");
        }
    }

    #[test]
    fn header_matches_content() {
        let text = to_text(&trained());
        let header = text.lines().next().unwrap();
        assert_eq!(header, format!("{} 6", trained().vocab_size()));
        assert_eq!(text.lines().count(), trained().vocab_size() + 1);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_text("").is_err());
        assert!(from_text("not-a-number 4\n").is_err());
        assert!(from_text("1 0\nword\n").is_err());
        // Wrong vector length.
        assert!(from_text("1 3\nword 0.1 0.2\n").is_err());
        // Bad float.
        assert!(from_text("1 2\nword 0.1 oops\n").is_err());
        // Row count mismatch.
        assert!(from_text("2 2\nword 0.1 0.2\n").is_err());
    }

    #[test]
    fn oov_backoff_survives_round_trip() {
        let e2 = from_text(&to_text(&trained())).unwrap();
        // OOV words still get trigram vectors of the right dimension.
        assert!(!e2.contains("zzz"));
        assert_eq!(e2.vector("zzz").len(), 6);
        assert!(e2.similarity("panasonic", "panasonik") > 0.5);
    }
}
