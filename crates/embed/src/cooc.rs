//! Co-occurrence counting and the PPMI transform.
//!
//! The semantic-similarity knowledge source of CREW needs word vectors
//! trained on the *dataset corpus itself* (entity descriptions), mirroring
//! how the paper family uses distributional similarity: words that appear in
//! similar contexts (brands with brands, units with numbers) end up close.

use em_text::Vocabulary;
use std::collections::HashMap;
use std::sync::Mutex;

/// Sentences per parallel counting chunk. Fixed — never derived from the
/// thread budget — so the chunk partial sums, and therefore every float
/// merge order, are identical at any thread count (1 thread and 16
/// threads produce bitwise-equal counts, marginals and totals).
const CHUNK_SENTS: usize = 256;

/// Sparse symmetric co-occurrence counts over a corpus.
#[derive(Debug, Clone)]
pub struct Cooccurrence {
    vocab: Vocabulary,
    /// `(row, col) -> weighted count`, row/col are vocab ids; stores both
    /// orientations so row extraction is cheap.
    counts: HashMap<(u32, u32), f64>,
    total: f64,
    row_sums: Vec<f64>,
}

/// Options for co-occurrence counting.
#[derive(Debug, Clone, Copy)]
pub struct CoocOptions {
    /// Symmetric window size (tokens on each side).
    pub window: usize,
    /// If true, weight a pair at distance `d` by `1/d` (GloVe-style).
    pub distance_weighting: bool,
    /// Drop tokens occurring fewer than this many times in the corpus.
    pub min_count: u64,
    /// Thread budget for the counting pass (`0` = auto-size to the
    /// shared pool). Counts are bitwise-identical at any value.
    pub threads: usize,
}

impl Default for CoocOptions {
    fn default() -> Self {
        CoocOptions {
            window: 4,
            distance_weighting: true,
            min_count: 1,
            threads: 0,
        }
    }
}

/// Partial counts from one sentence chunk, merged in chunk order.
struct ChunkCounts {
    counts: HashMap<(u32, u32), f64>,
    row_sums: Vec<f64>,
    total: f64,
}

impl Cooccurrence {
    /// Count co-occurrences over sentences (token slices).
    ///
    /// The windowed counting pass is parallelised over fixed-size
    /// sentence chunks on the shared worker pool; each chunk accumulates
    /// a local map that is merged in chunk order afterwards. Chunking is
    /// independent of the thread budget, per-key merge order is chunk
    /// order, and float marginals are sums of chunk partials in chunk
    /// order — so the result is bitwise-identical at any thread count,
    /// and retraining never sees hash-iteration-order noise.
    pub fn build<'a, I>(sentences: I, opts: CoocOptions) -> Self
    where
        I: IntoIterator<Item = &'a [String]> + Clone,
    {
        // Pass 1 (serial): frequencies for min-count filtering.
        let mut freq: HashMap<&str, u64> = HashMap::new();
        for sent in sentences.clone() {
            for tok in sent {
                *freq.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
        // Pass 2 (serial): assign vocabulary ids in first-appearance
        // order and materialise id sentences for the counting pass.
        let mut vocab = Vocabulary::new();
        let id_sents: Vec<Vec<Option<u32>>> = sentences
            .into_iter()
            .map(|sent| {
                sent.iter()
                    .map(|t| {
                        if freq[t.as_str()] >= opts.min_count {
                            Some(vocab.add(t))
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect();
        let n_vocab = vocab.len();

        // Pass 3 (parallel): windowed pair counting per chunk.
        let count_chunk = |b: usize| -> ChunkCounts {
            let mut local = ChunkCounts {
                counts: HashMap::new(),
                row_sums: vec![0.0; n_vocab],
                total: 0.0,
            };
            let lo = b * CHUNK_SENTS;
            let hi = (lo + CHUNK_SENTS).min(id_sents.len());
            for ids in &id_sents[lo..hi] {
                for (i, a) in ids.iter().enumerate() {
                    let Some(a) = *a else { continue };
                    let win_hi = (i + opts.window + 1).min(ids.len());
                    for (dist0, b) in ids[i + 1..win_hi].iter().enumerate() {
                        let Some(b) = *b else { continue };
                        let w = if opts.distance_weighting {
                            1.0 / (dist0 as f64 + 1.0)
                        } else {
                            1.0
                        };
                        *local.counts.entry((a, b)).or_insert(0.0) += w;
                        *local.counts.entry((b, a)).or_insert(0.0) += w;
                        local.total += 2.0 * w;
                        local.row_sums[a as usize] += w;
                        local.row_sums[b as usize] += w;
                    }
                }
            }
            local
        };
        let n_chunks = id_sents.len().div_ceil(CHUNK_SENTS);
        let slots: Vec<Mutex<Option<ChunkCounts>>> =
            (0..n_chunks).map(|_| Mutex::new(None)).collect();
        let threads = if opts.threads == 0 {
            em_pool::default_threads()
        } else {
            opts.threads
        };
        em_pool::global().run(n_chunks, threads, &|b| {
            // Each slot is written exactly once, by the task owning
            // chunk `b`; the mutex only carries the value across threads.
            *slots[b].lock().unwrap() = Some(count_chunk(b));
        });

        // Merge in chunk order. Per-key values only ever combine with the
        // same key, so hash iteration order inside a chunk cannot change
        // any sum; the cross-chunk order is fixed by the loop.
        let mut counts: HashMap<(u32, u32), f64> = HashMap::new();
        let mut row_sums = vec![0.0; n_vocab];
        let mut total = 0.0;
        for slot in slots {
            let local = slot
                .into_inner()
                .expect("chunk slot mutex poisoned")
                .expect("chunk slot not filled");
            for (key, w) in local.counts {
                *counts.entry(key).or_insert(0.0) += w;
            }
            for (r, w) in local.row_sums.into_iter().enumerate() {
                row_sums[r] += w;
            }
            total += local.total;
        }
        Cooccurrence {
            vocab,
            counts,
            total,
            row_sums,
        }
    }

    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Raw weighted count for an id pair.
    pub fn count(&self, a: u32, b: u32) -> f64 {
        self.counts.get(&(a, b)).copied().unwrap_or(0.0)
    }

    /// Total weighted mass (sum over all ordered pairs).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Positive pointwise mutual information of an id pair:
    /// `max(0, ln( p(a,b) / (p(a) p(b)) ))` with a context-distribution
    /// smoothing exponent applied to the column marginal.
    pub fn ppmi(&self, a: u32, b: u32, smoothing: f64) -> f64 {
        let c = self.count(a, b);
        if c <= 0.0 || self.total <= 0.0 {
            return 0.0;
        }
        let pa = self.row_sums[a as usize] / self.total;
        // Smoothed context marginal (Levy & Goldberg alpha=0.75 by default).
        let smoothed_total: f64 = self.row_sums.iter().map(|s| s.powf(smoothing)).sum();
        let pb = self.row_sums[b as usize].powf(smoothing) / smoothed_total;
        let pab = c / self.total;
        (pab / (pa * pb)).ln().max(0.0)
    }

    /// Dense PPMI matrix (`vocab.len()` square). Fine for the small
    /// per-dataset vocabularies this reproduction handles (≤ a few thousand
    /// words); the SVD consumes this directly.
    pub fn ppmi_matrix(&self, smoothing: f64) -> em_linalg::Matrix {
        let n = self.vocab.len();
        let mut m = em_linalg::Matrix::zeros(n, n);
        if self.total <= 0.0 {
            return m;
        }
        let smoothed_total: f64 = self.row_sums.iter().map(|s| s.powf(smoothing)).sum();
        for (&(a, b), &c) in &self.counts {
            if c <= 0.0 {
                continue;
            }
            let pa = self.row_sums[a as usize] / self.total;
            let pb = self.row_sums[b as usize].powf(smoothing) / smoothed_total;
            let pab = c / self.total;
            let v = (pab / (pa * pb)).ln();
            if v > 0.0 {
                m[(a as usize, b as usize)] = v;
            }
        }
        m
    }

    /// PPMI matrix in CSR form: the same cells as [`Self::ppmi_matrix`]
    /// computed with the same arithmetic (the property suite pins
    /// pointwise equality), but storing only the positive entries —
    /// O(nnz) instead of O(V²). Triplet order is irrelevant:
    /// `SparseMatrix::from_triplets` sorts, so the layout is
    /// deterministic even though `counts` is iterated in hash order.
    pub fn ppmi_csr(&self, smoothing: f64) -> em_linalg::SparseMatrix {
        let n = self.vocab.len();
        if self.total <= 0.0 {
            return em_linalg::SparseMatrix::from_triplets(n, n, Vec::new());
        }
        let smoothed_total: f64 = self.row_sums.iter().map(|s| s.powf(smoothing)).sum();
        let mut entries = Vec::with_capacity(self.counts.len());
        for (&(a, b), &c) in &self.counts {
            if c <= 0.0 {
                continue;
            }
            let pa = self.row_sums[a as usize] / self.total;
            let pb = self.row_sums[b as usize].powf(smoothing) / smoothed_total;
            let pab = c / self.total;
            let v = (pab / (pa * pb)).ln();
            if v > 0.0 {
                entries.push((a, b, v));
            }
        }
        em_linalg::SparseMatrix::from_triplets(n, n, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sents(raw: &[&str]) -> Vec<Vec<String>> {
        raw.iter().map(|s| em_text::tokenize(s)).collect()
    }

    fn build(raw: &[&str], opts: CoocOptions) -> Cooccurrence {
        let s = sents(raw);
        Cooccurrence::build(s.iter().map(|v| v.as_slice()), opts)
    }

    #[test]
    fn counts_are_symmetric() {
        let c = build(&["sony tv black", "sony tv white"], CoocOptions::default());
        let sony = c.vocab().get("sony").unwrap();
        let tv = c.vocab().get("tv").unwrap();
        assert!(c.count(sony, tv) > 0.0);
        assert_eq!(c.count(sony, tv), c.count(tv, sony));
    }

    #[test]
    fn window_limits_pairs() {
        let opts = CoocOptions {
            window: 1,
            distance_weighting: false,
            min_count: 1,
            threads: 0,
        };
        let c = build(&["a b c d"], opts);
        let a = c.vocab().get("a").unwrap();
        let b = c.vocab().get("b").unwrap();
        let d = c.vocab().get("d").unwrap();
        assert_eq!(c.count(a, b), 1.0);
        assert_eq!(c.count(a, d), 0.0);
    }

    #[test]
    fn distance_weighting_decays() {
        let opts = CoocOptions {
            window: 3,
            distance_weighting: true,
            min_count: 1,
            threads: 0,
        };
        let c = build(&["a b c"], opts);
        let a = c.vocab().get("a").unwrap();
        let b = c.vocab().get("b").unwrap();
        let cc = c.vocab().get("c").unwrap();
        assert_eq!(c.count(a, b), 1.0); // distance 1
        assert_eq!(c.count(a, cc), 0.5); // distance 2
    }

    #[test]
    fn min_count_filters_rare_tokens() {
        let opts = CoocOptions {
            window: 2,
            distance_weighting: false,
            min_count: 2,
            threads: 0,
        };
        let c = build(&["common rare1 common", "common rare2"], opts);
        assert!(c.vocab().get("common").is_some());
        assert!(c.vocab().get("rare1").is_none());
        assert!(c.vocab().get("rare2").is_none());
    }

    #[test]
    fn ppmi_zero_for_unseen_pairs() {
        let c = build(&["x y", "p q"], CoocOptions::default());
        let x = c.vocab().get("x").unwrap();
        let p = c.vocab().get("p").unwrap();
        assert_eq!(c.ppmi(x, p, 0.75), 0.0);
    }

    #[test]
    fn ppmi_positive_for_associated_pairs() {
        // "sony" always next to "tv", "lg" always next to "monitor".
        let c = build(
            &[
                "sony tv",
                "sony tv",
                "lg monitor",
                "lg monitor",
                "sony tv",
                "lg monitor",
            ],
            CoocOptions {
                window: 1,
                distance_weighting: false,
                min_count: 1,
                threads: 0,
            },
        );
        let sony = c.vocab().get("sony").unwrap();
        let tv = c.vocab().get("tv").unwrap();
        let monitor = c.vocab().get("monitor").unwrap();
        assert!(c.ppmi(sony, tv, 1.0) > 0.0);
        assert_eq!(c.ppmi(sony, monitor, 1.0), 0.0);
    }

    #[test]
    fn ppmi_matrix_matches_pointwise() {
        let c = build(&["a b c a b", "b c a"], CoocOptions::default());
        let m = c.ppmi_matrix(0.75);
        for i in 0..c.vocab().len() as u32 {
            for j in 0..c.vocab().len() as u32 {
                let expect = c.ppmi(i, j, 0.75);
                assert!(
                    (m[(i as usize, j as usize)] - expect).abs() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn empty_corpus_is_harmless() {
        let s: Vec<Vec<String>> = vec![];
        let c = Cooccurrence::build(s.iter().map(|v| v.as_slice()), CoocOptions::default());
        assert_eq!(c.vocab().len(), 0);
        assert_eq!(c.total(), 0.0);
        assert_eq!(c.ppmi_matrix(0.75).rows(), 0);
        assert_eq!(c.ppmi_csr(0.75).rows(), 0);
    }

    /// A corpus spanning several counting chunks, with enough repetition
    /// that every chunk contributes to shared keys.
    fn multi_chunk_corpus() -> Vec<Vec<String>> {
        let phrases = [
            "sony bravia tv black",
            "samsung qled tv silver",
            "bose qc45 headphones",
            "lg oled monitor white",
            "apple ipad tablet grey",
        ];
        (0..3 * super::CHUNK_SENTS + 41)
            .map(|i| em_text::tokenize(phrases[i % phrases.len()]))
            .collect()
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let s = multi_chunk_corpus();
        let opts_for = |threads| CoocOptions {
            threads,
            ..Default::default()
        };
        let c1 = Cooccurrence::build(s.iter().map(|v| v.as_slice()), opts_for(1));
        let c4 = Cooccurrence::build(s.iter().map(|v| v.as_slice()), opts_for(4));
        assert_eq!(c1.total().to_bits(), c4.total().to_bits());
        assert_eq!(c1.vocab().len(), c4.vocab().len());
        for a in 0..c1.vocab().len() as u32 {
            for b in 0..c1.vocab().len() as u32 {
                assert_eq!(
                    c1.count(a, b).to_bits(),
                    c4.count(a, b).to_bits(),
                    "count mismatch at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn ppmi_csr_matches_dense_matrix_bitwise() {
        for corpus in [
            sents(&["a b c a b", "b c a", "d a d b"]),
            multi_chunk_corpus(),
        ] {
            let c =
                Cooccurrence::build(corpus.iter().map(|v| v.as_slice()), CoocOptions::default());
            let dense = c.ppmi_matrix(0.75);
            let sparse = c.ppmi_csr(0.75);
            assert_eq!(sparse.rows(), dense.rows());
            assert_eq!(sparse.cols(), dense.cols());
            for i in 0..dense.rows() {
                for j in 0..dense.cols() {
                    assert_eq!(
                        sparse.get(i, j).to_bits(),
                        dense[(i, j)].to_bits(),
                        "PPMI mismatch at ({i},{j})"
                    );
                }
            }
        }
    }
}
