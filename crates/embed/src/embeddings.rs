//! Word embeddings: PPMI + truncated SVD over the corpus, with hashed
//! character-trigram vectors as an out-of-vocabulary fallback so *every*
//! word of a pair gets a semantic position (model numbers, typos, rare
//! brands included).

use crate::cooc::{CoocOptions, Cooccurrence};
use em_linalg::{randomized_svd, randomized_svd_sparse, Matrix, SvdOptions};
use std::collections::HashMap;

/// Options for embedding training.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingOptions {
    /// Embedding dimensionality.
    pub dimensions: usize,
    /// Co-occurrence options.
    pub cooc: CoocOptions,
    /// PPMI context-distribution smoothing exponent.
    pub smoothing: f64,
    /// Weight singular vectors by `sigma^p` (p=0.5 is the common choice).
    pub sigma_power: f64,
    /// Seed for the randomized SVD.
    pub seed: u64,
    /// Factorise the PPMI matrix through the CSR path (default). The
    /// sparse and dense paths are bitwise-equivalent; the flag exists so
    /// the dense path stays reachable as the property-tested reference.
    pub sparse: bool,
    /// Thread budget for the sparse matvecs (`0` = auto-size to the
    /// shared pool). Embeddings are bitwise-identical at any value.
    pub threads: usize,
}

impl Default for EmbeddingOptions {
    fn default() -> Self {
        EmbeddingOptions {
            dimensions: 48,
            cooc: CoocOptions::default(),
            smoothing: 0.75,
            sigma_power: 0.5,
            seed: 0xe4bed,
            sparse: true,
            threads: 0,
        }
    }
}

/// Trained word embeddings with trigram back-off.
#[derive(Debug, Clone)]
pub struct WordEmbeddings {
    dims: usize,
    by_word: HashMap<String, Vec<f64>>,
}

impl WordEmbeddings {
    /// Train embeddings on a corpus of sentences.
    ///
    /// Falls back to pure trigram vectors when the corpus is too small for a
    /// meaningful factorisation (fewer than 2 vocabulary words).
    pub fn train<'a, I>(sentences: I, opts: EmbeddingOptions) -> Result<Self, crate::EmbedError>
    where
        I: IntoIterator<Item = &'a [String]> + Clone,
    {
        if opts.dimensions == 0 {
            return Err(crate::EmbedError::InvalidDimensions(0));
        }
        let _train = em_obs::span!("embed/train");
        em_obs::counter!("embed/trainings", 1);
        let cooc = {
            let _span = em_obs::span!("cooc");
            Cooccurrence::build(sentences, opts.cooc)
        };
        let n = cooc.vocab().len();
        let mut by_word = HashMap::with_capacity(n);
        if n >= 2 {
            let k = opts.dimensions.min(n);
            let svd_opts = SvdOptions {
                seed: opts.seed,
                threads: opts.threads,
                ..Default::default()
            };
            let svd = {
                if opts.sparse {
                    let ppmi = {
                        let _span = em_obs::span!("ppmi");
                        cooc.ppmi_csr(opts.smoothing)
                    };
                    let _span = em_obs::span!("svd");
                    randomized_svd_sparse(&ppmi, k, svd_opts)
                } else {
                    let ppmi = {
                        let _span = em_obs::span!("ppmi");
                        cooc.ppmi_matrix(opts.smoothing)
                    };
                    let _span = em_obs::span!("svd");
                    randomized_svd(&ppmi, k, svd_opts)
                }
                .map_err(crate::EmbedError::Linalg)?
            };
            let _span = em_obs::span!("vectors");
            let kk = svd.sigma.len();
            for (id, word, _) in cooc.vocab().iter() {
                let mut v = Vec::with_capacity(kk);
                for c in 0..kk {
                    v.push(svd.u[(id as usize, c)] * svd.sigma[c].powf(opts.sigma_power));
                }
                // Pad to the requested dimensionality so all vectors align.
                v.resize(opts.dimensions, 0.0);
                by_word.insert(word.to_string(), v);
            }
        } else {
            for (_, word, _) in cooc.vocab().iter() {
                by_word.insert(word.to_string(), trigram_vector(word, opts.dimensions));
            }
        }
        Ok(WordEmbeddings {
            dims: opts.dimensions,
            by_word,
        })
    }

    /// Train on the textual corpus of an `em_data::Dataset`: each record's
    /// attribute values become one sentence per record.
    pub fn train_on_dataset(
        dataset: &em_data::Dataset,
        opts: EmbeddingOptions,
    ) -> Result<Self, crate::EmbedError> {
        let mut sentences: Vec<Vec<String>> = Vec::with_capacity(dataset.len() * 2);
        for ex in dataset.examples() {
            for rec in [ex.pair.left(), ex.pair.right()] {
                sentences.push(em_text::tokenize(&rec.full_text()));
            }
        }
        Self::train(sentences.iter().map(|v| v.as_slice()), opts)
    }

    /// Rebuild from parts (used by the text-format loader).
    pub(crate) fn from_parts(dims: usize, by_word: HashMap<String, Vec<f64>>) -> Self {
        WordEmbeddings { dims, by_word }
    }

    /// Iterate the in-vocabulary words (arbitrary order).
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.by_word.keys().map(|s| s.as_str())
    }

    /// Embedding dimensionality.
    pub fn dimensions(&self) -> usize {
        self.dims
    }

    /// Number of in-vocabulary words.
    pub fn vocab_size(&self) -> usize {
        self.by_word.len()
    }

    /// True if the word was seen during training.
    pub fn contains(&self, word: &str) -> bool {
        self.by_word.contains_key(word)
    }

    /// Vector for a word: trained vector if in vocabulary, otherwise a
    /// deterministic hashed character-trigram vector (so similar surface
    /// forms like "panasonic"/"panasonik" stay close).
    pub fn vector(&self, word: &str) -> Vec<f64> {
        if let Some(v) = self.by_word.get(word) {
            return v.clone();
        }
        trigram_vector(word, self.dims)
    }

    /// Cosine similarity between two words' vectors.
    ///
    /// When either word is out of vocabulary both are mapped through the
    /// trigram space so the comparison stays apples-to-apples.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        match (self.by_word.get(a), self.by_word.get(b)) {
            (Some(va), Some(vb)) => em_linalg::cosine(va, vb),
            _ => em_linalg::cosine(&trigram_vector(a, self.dims), &trigram_vector(b, self.dims)),
        }
    }

    /// `k` nearest in-vocabulary neighbours of a word by cosine.
    pub fn nearest(&self, word: &str, k: usize) -> Vec<(String, f64)> {
        let q = self.vector(word);
        let mut scored: Vec<(String, f64)> = self
            .by_word
            .iter()
            .filter(|(w, _)| w.as_str() != word)
            .map(|(w, v)| (w.clone(), em_linalg::cosine(&q, v)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

/// Deterministic hashed character-trigram vector (FNV-1a bucketed), L2
/// normalised. Gives OOV words a stable position where shared substrings
/// imply proximity.
pub fn trigram_vector(word: &str, dims: usize) -> Vec<f64> {
    let mut v = vec![0.0; dims];
    if dims == 0 {
        return v;
    }
    for g in em_text::qgrams(word, 3) {
        let h = fnv1a(g.as_bytes());
        v[(h % dims as u64) as usize] += 1.0;
    }
    let norm = em_linalg::norm2(&v);
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Build a pairwise cosine-distance matrix (`1 - cos`) over a word list.
///
/// Duplicate surface forms are interned once: each distinct word's vector
/// and norm are computed a single time and every pair is then one dot
/// product — the same arithmetic `em_linalg::cosine` performs, so the
/// distances are bitwise-unchanged, just without the per-pair norm
/// recomputation (this matrix is rebuilt for every explained pair).
pub fn semantic_distance_matrix<S: AsRef<str>>(emb: &WordEmbeddings, words: &[S]) -> Matrix {
    let n = words.len();
    // Intern distinct surface forms in first-appearance order.
    let mut id_of: HashMap<&str, usize> = HashMap::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    let mut vecs: Vec<Vec<f64>> = Vec::new();
    let mut norms: Vec<f64> = Vec::new();
    for w in words {
        let w = w.as_ref();
        let next = vecs.len();
        let id = *id_of.entry(w).or_insert(next);
        if id == vecs.len() {
            let v = emb.vector(w);
            norms.push(em_linalg::norm2(&v));
            vecs.push(v);
        }
        ids.push(id);
    }
    // One distance per distinct-id pair: words repeat across a record's
    // attributes and its perturbed variants, so the number of distinct
    // forms `k` is usually well below `n` and the expensive dot products
    // collapse from n²/2 to k²/2. Scattering the cached value into the
    // n×n matrix is bitwise-identical to recomputing it per position.
    let k = vecs.len();
    let mut pair_dist = vec![0.0; k * k];
    for a in 0..k {
        for b in a + 1..k {
            let dist = if norms[a] == 0.0 || norms[b] == 0.0 {
                // cosine() reports 0 on zero norms -> distance 1/2.
                0.5
            } else {
                // Cosine in [-1,1] -> distance in [0,1].
                let c =
                    (em_linalg::dot(&vecs[a], &vecs[b]) / (norms[a] * norms[b])).clamp(-1.0, 1.0);
                (1.0 - c) / 2.0
            };
            pair_dist[a * k + b] = dist;
            pair_dist[b * k + a] = dist;
        }
    }
    let mut d = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i + 1..n {
            // Same-id pairs hit the zero diagonal of `pair_dist`.
            let dist = pair_dist[ids[i] * k + ids[j]];
            d[(i, j)] = dist;
            d[(j, i)] = dist;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<String>> {
        // Brands co-occur with their product nouns; colours co-occur with
        // both; repeated enough for stable statistics.
        let raw = [
            "sony bravia tv black",
            "sony bravia tv silver",
            "samsung qled tv black",
            "samsung qled tv silver",
            "sony wh1000 headphones black",
            "bose qc45 headphones silver",
            "sony bravia tv",
            "samsung qled tv",
            "bose qc45 headphones",
            "sony wh1000 headphones",
        ];
        raw.iter().map(|s| em_text::tokenize(s)).collect()
    }

    fn train() -> WordEmbeddings {
        let c = corpus();
        WordEmbeddings::train(
            c.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 16,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn training_covers_vocabulary() {
        let e = train();
        assert!(e.contains("sony"));
        assert!(e.contains("tv"));
        assert!(!e.contains("unseen"));
        assert_eq!(e.dimensions(), 16);
        assert_eq!(e.vector("sony").len(), 16);
    }

    #[test]
    fn similarity_is_reflexive_and_bounded() {
        let e = train();
        assert_eq!(e.similarity("sony", "sony"), 1.0);
        let s = e.similarity("sony", "samsung");
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn distributionally_similar_words_are_closer() {
        let e = train();
        // "black" and "silver" occur in identical contexts; "black" and
        // "bravia" do not.
        let close = e.similarity("black", "silver");
        let far = e.similarity("black", "qc45");
        assert!(close > far, "close={close} far={far}");
    }

    #[test]
    fn oov_words_use_trigram_backoff() {
        let e = train();
        // Typo of an OOV brand should still be near the same OOV surface form.
        let same_ish = e.similarity("panasonic", "panasonik");
        let different = e.similarity("panasonic", "xyzzy");
        assert!(same_ish > different);
        assert!(same_ish > 0.5);
    }

    #[test]
    fn nearest_returns_sorted_topk() {
        let e = train();
        let nn = e.nearest("sony", 3);
        assert_eq!(nn.len(), 3);
        for w in nn.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(nn.iter().all(|(w, _)| w != "sony"));
    }

    #[test]
    fn trigram_vectors_are_normalised_and_deterministic() {
        let a = trigram_vector("bravia", 32);
        let b = trigram_vector("bravia", 32);
        assert_eq!(a, b);
        assert!((em_linalg::norm2(&a) - 1.0).abs() < 1e-12);
        assert_eq!(trigram_vector("", 0).len(), 0);
    }

    #[test]
    fn training_is_deterministic() {
        let e1 = train();
        let e2 = train();
        assert_eq!(e1.vector("tv"), e2.vector("tv"));
    }

    #[test]
    fn sparse_and_dense_training_agree_bitwise() {
        let c = corpus();
        let mk = |sparse| {
            WordEmbeddings::train(
                c.iter().map(|v| v.as_slice()),
                EmbeddingOptions {
                    dimensions: 16,
                    sparse,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let sp = mk(true);
        let dn = mk(false);
        assert_eq!(sp.vocab_size(), dn.vocab_size());
        for w in dn.words() {
            for (x, y) in sp.vector(w).iter().zip(dn.vector(w)) {
                assert_eq!(x.to_bits(), y.to_bits(), "vector mismatch for {w:?}");
            }
        }
    }

    #[test]
    fn tiny_corpus_falls_back_to_trigrams() {
        let c: Vec<Vec<String>> = vec![em_text::tokenize("solo")];
        let e = WordEmbeddings::train(
            c.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(e.contains("solo"));
        assert_eq!(e.vector("solo").len(), 8);
    }

    #[test]
    fn zero_dimensions_is_an_error() {
        let c = corpus();
        let err = WordEmbeddings::train(
            c.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 0,
                ..Default::default()
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn distance_matrix_is_symmetric_zero_diagonal() {
        let e = train();
        let words: Vec<String> = ["sony", "tv", "black", "sony"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let d = semantic_distance_matrix(&e, &words);
        assert_eq!(d.rows(), 4);
        for i in 0..4 {
            assert_eq!(d[(i, i)], 0.0);
            for j in 0..4 {
                assert!((d[(i, j)] - d[(j, i)]).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&d[(i, j)]));
            }
        }
        // Duplicate words have zero distance.
        assert_eq!(d[(0, 3)], 0.0);
    }
}
