//! Word embeddings: PPMI + truncated SVD over the corpus, with hashed
//! character-trigram vectors as an out-of-vocabulary fallback so *every*
//! word of a pair gets a semantic position (model numbers, typos, rare
//! brands included).

use crate::ann::{pair_distance, AnnIndex, AnnOptions};
use crate::cooc::{CoocOptions, Cooccurrence};
use em_linalg::{randomized_svd, randomized_svd_sparse, Matrix, SvdOptions};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Options for embedding training.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingOptions {
    /// Embedding dimensionality.
    pub dimensions: usize,
    /// Co-occurrence options.
    pub cooc: CoocOptions,
    /// PPMI context-distribution smoothing exponent.
    pub smoothing: f64,
    /// Weight singular vectors by `sigma^p` (p=0.5 is the common choice).
    pub sigma_power: f64,
    /// Seed for the randomized SVD.
    pub seed: u64,
    /// Factorise the PPMI matrix through the CSR path (default). The
    /// sparse and dense paths are bitwise-equivalent; the flag exists so
    /// the dense path stays reachable as the property-tested reference.
    pub sparse: bool,
    /// Thread budget for the sparse matvecs (`0` = auto-size to the
    /// shared pool). Embeddings are bitwise-identical at any value.
    pub threads: usize,
}

impl Default for EmbeddingOptions {
    fn default() -> Self {
        EmbeddingOptions {
            dimensions: 48,
            cooc: CoocOptions::default(),
            smoothing: 0.75,
            sigma_power: 0.5,
            seed: 0xe4bed,
            sparse: true,
            threads: 0,
        }
    }
}

/// Trained word embeddings with trigram back-off.
///
/// Each entry stores the vector alongside its L2 norm, computed once at
/// construction: every cosine consumer (similarity, the distance
/// matrices, the ANN re-rank) divides by the same train-time bits
/// instead of re-normalising per call.
#[derive(Debug, Clone)]
pub struct WordEmbeddings {
    dims: usize,
    by_word: HashMap<String, (Vec<f64>, f64)>,
}

impl WordEmbeddings {
    /// Train embeddings on a corpus of sentences.
    ///
    /// Falls back to pure trigram vectors when the corpus is too small for a
    /// meaningful factorisation (fewer than 2 vocabulary words).
    pub fn train<'a, I>(sentences: I, opts: EmbeddingOptions) -> Result<Self, crate::EmbedError>
    where
        I: IntoIterator<Item = &'a [String]> + Clone,
    {
        if opts.dimensions == 0 {
            return Err(crate::EmbedError::InvalidDimensions(0));
        }
        let _train = em_obs::span!("embed/train");
        em_obs::counter!("embed/trainings", 1);
        let cooc = {
            let _span = em_obs::span!("cooc");
            Cooccurrence::build(sentences, opts.cooc)
        };
        let n = cooc.vocab().len();
        let mut by_word = HashMap::with_capacity(n);
        if n >= 2 {
            let k = opts.dimensions.min(n);
            let svd_opts = SvdOptions {
                seed: opts.seed,
                threads: opts.threads,
                ..Default::default()
            };
            let svd = {
                if opts.sparse {
                    let ppmi = {
                        let _span = em_obs::span!("ppmi");
                        cooc.ppmi_csr(opts.smoothing)
                    };
                    let _span = em_obs::span!("svd");
                    randomized_svd_sparse(&ppmi, k, svd_opts)
                } else {
                    let ppmi = {
                        let _span = em_obs::span!("ppmi");
                        cooc.ppmi_matrix(opts.smoothing)
                    };
                    let _span = em_obs::span!("svd");
                    randomized_svd(&ppmi, k, svd_opts)
                }
                .map_err(crate::EmbedError::Linalg)?
            };
            let _span = em_obs::span!("vectors");
            let kk = svd.sigma.len();
            for (id, word, _) in cooc.vocab().iter() {
                let mut v = Vec::with_capacity(kk);
                for c in 0..kk {
                    v.push(svd.u[(id as usize, c)] * svd.sigma[c].powf(opts.sigma_power));
                }
                // Pad to the requested dimensionality so all vectors align.
                v.resize(opts.dimensions, 0.0);
                let norm = em_linalg::norm2(&v);
                by_word.insert(word.to_string(), (v, norm));
            }
        } else {
            for (_, word, _) in cooc.vocab().iter() {
                let v = trigram_vector(word, opts.dimensions);
                let norm = em_linalg::norm2(&v);
                by_word.insert(word.to_string(), (v, norm));
            }
        }
        Ok(WordEmbeddings {
            dims: opts.dimensions,
            by_word,
        })
    }

    /// Train on the textual corpus of an `em_data::Dataset`: each record's
    /// attribute values become one sentence per record.
    pub fn train_on_dataset(
        dataset: &em_data::Dataset,
        opts: EmbeddingOptions,
    ) -> Result<Self, crate::EmbedError> {
        let mut sentences: Vec<Vec<String>> = Vec::with_capacity(dataset.len() * 2);
        for ex in dataset.examples() {
            for rec in [ex.pair.left(), ex.pair.right()] {
                sentences.push(em_text::tokenize(&rec.full_text()));
            }
        }
        Self::train(sentences.iter().map(|v| v.as_slice()), opts)
    }

    /// Rebuild from parts (used by the text-format loader).
    pub(crate) fn from_parts(dims: usize, by_word: HashMap<String, Vec<f64>>) -> Self {
        let by_word = by_word
            .into_iter()
            .map(|(w, v)| {
                let norm = em_linalg::norm2(&v);
                (w, (v, norm))
            })
            .collect();
        WordEmbeddings { dims, by_word }
    }

    /// Build embeddings directly from externally supplied vectors (for
    /// synthetic vocabularies in benchmarks and property tests). All
    /// vectors must have length `dims`.
    pub fn from_vectors<I>(dims: usize, vectors: I) -> Result<Self, crate::EmbedError>
    where
        I: IntoIterator<Item = (String, Vec<f64>)>,
    {
        if dims == 0 {
            return Err(crate::EmbedError::InvalidDimensions(0));
        }
        let mut by_word = HashMap::new();
        for (w, v) in vectors {
            if v.len() != dims {
                return Err(crate::EmbedError::InvalidDimensions(v.len()));
            }
            let norm = em_linalg::norm2(&v);
            by_word.insert(w, (v, norm));
        }
        Ok(WordEmbeddings { dims, by_word })
    }

    /// Iterate the in-vocabulary words (arbitrary order).
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.by_word.keys().map(|s| s.as_str())
    }

    /// Embedding dimensionality.
    pub fn dimensions(&self) -> usize {
        self.dims
    }

    /// Number of in-vocabulary words.
    pub fn vocab_size(&self) -> usize {
        self.by_word.len()
    }

    /// True if the word was seen during training.
    pub fn contains(&self, word: &str) -> bool {
        self.by_word.contains_key(word)
    }

    /// Vector for a word: trained vector if in vocabulary, otherwise a
    /// deterministic hashed character-trigram vector (so similar surface
    /// forms like "panasonic"/"panasonik" stay close).
    pub fn vector(&self, word: &str) -> Vec<f64> {
        if let Some((v, _)) = self.by_word.get(word) {
            return v.clone();
        }
        trigram_vector(word, self.dims)
    }

    /// Vector plus its L2 norm. In-vocabulary words return the norm
    /// cached at construction (`norm2` of the same bits, so identical to
    /// recomputing); out-of-vocabulary words get a fresh trigram vector
    /// and its norm.
    pub fn vector_norm(&self, word: &str) -> (Vec<f64>, f64) {
        if let Some((v, n)) = self.by_word.get(word) {
            return (v.clone(), *n);
        }
        let v = trigram_vector(word, self.dims);
        let n = em_linalg::norm2(&v);
        (v, n)
    }

    /// Cosine similarity between two words' vectors.
    ///
    /// When either word is out of vocabulary both are mapped through the
    /// trigram space so the comparison stays apples-to-apples.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        match (self.by_word.get(a), self.by_word.get(b)) {
            // Same arithmetic as `em_linalg::cosine`, with the norms
            // taken from the train-time cache.
            (Some((va, na)), Some((vb, nb))) => {
                if *na == 0.0 || *nb == 0.0 {
                    0.0
                } else {
                    (em_linalg::dot(va, vb) / (na * nb)).clamp(-1.0, 1.0)
                }
            }
            _ => em_linalg::cosine(&trigram_vector(a, self.dims), &trigram_vector(b, self.dims)),
        }
    }

    /// `k` nearest in-vocabulary neighbours of a word by cosine.
    pub fn nearest(&self, word: &str, k: usize) -> Vec<(String, f64)> {
        let (q, qn) = self.vector_norm(word);
        let mut scored: Vec<(String, f64)> = self
            .by_word
            .iter()
            .filter(|(w, _)| w.as_str() != word)
            .map(|(w, (v, n))| {
                let s = if qn == 0.0 || *n == 0.0 {
                    0.0
                } else {
                    (em_linalg::dot(&q, v) / (qn * n)).clamp(-1.0, 1.0)
                };
                (w.clone(), s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

/// Deterministic hashed character-trigram vector (FNV-1a bucketed), L2
/// normalised. Gives OOV words a stable position where shared substrings
/// imply proximity.
pub fn trigram_vector(word: &str, dims: usize) -> Vec<f64> {
    let mut v = vec![0.0; dims];
    if dims == 0 {
        return v;
    }
    for g in em_text::qgrams(word, 3) {
        let h = fnv1a(g.as_bytes());
        v[(h % dims as u64) as usize] += 1.0;
    }
    let norm = em_linalg::norm2(&v);
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Backend selection for [`semantic_distance_matrix_with`] and
/// [`semantic_topk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticBackend {
    /// All-pairs exact distances — the original behaviour, O(k²·d) in
    /// the distinct-word count.
    Exact,
    /// Exact below [`SemanticMatrixOptions::auto_threshold`] distinct
    /// words (bitwise-identical to [`SemanticBackend::Exact`] there),
    /// ANN at or above it.
    Auto,
    /// Always the LSH index, regardless of vocabulary size.
    Ann,
}

/// Options of the semantic distance computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SemanticMatrixOptions {
    pub backend: SemanticBackend,
    /// LSH index parameters for the ANN backend.
    pub ann: AnnOptions,
    /// Neighbours kept per distinct word by the ANN matrix / top-k paths.
    pub neighbors: usize,
    /// `Auto` switches from exact to ANN at this many distinct words.
    pub auto_threshold: usize,
}

impl Default for SemanticMatrixOptions {
    fn default() -> Self {
        SemanticMatrixOptions {
            backend: SemanticBackend::Auto,
            ann: AnnOptions::default(),
            neighbors: 32,
            auto_threshold: 512,
        }
    }
}

impl SemanticMatrixOptions {
    /// The always-exact configuration (the pinned seed behaviour).
    pub fn exact() -> Self {
        SemanticMatrixOptions {
            backend: SemanticBackend::Exact,
            ..Default::default()
        }
    }
}

/// Distinct surface forms of a word list, in first-appearance order,
/// with their vectors and cached norms.
struct Interned {
    /// Distinct-form id of each input position.
    ids: Vec<usize>,
    vecs: Vec<Vec<f64>>,
    norms: Vec<f64>,
}

fn intern<S: AsRef<str>>(emb: &WordEmbeddings, words: &[S]) -> Interned {
    let mut id_of: HashMap<&str, usize> = HashMap::with_capacity(words.len());
    let mut ids = Vec::with_capacity(words.len());
    let mut vecs: Vec<Vec<f64>> = Vec::new();
    let mut norms: Vec<f64> = Vec::new();
    for w in words {
        let w = w.as_ref();
        let next = vecs.len();
        let id = *id_of.entry(w).or_insert(next);
        if id == vecs.len() {
            let (v, n) = emb.vector_norm(w);
            norms.push(n);
            vecs.push(v);
        }
        ids.push(id);
    }
    Interned { ids, vecs, norms }
}

/// Build a pairwise cosine-distance matrix (`1 - cos`) over a word list.
///
/// Duplicate surface forms are interned once: each distinct word's vector
/// and norm are fetched a single time and every pair is then one dot
/// product — the same arithmetic `em_linalg::cosine` performs, so the
/// distances are bitwise-unchanged, just without the per-pair norm
/// recomputation (this matrix is rebuilt for every explained pair).
pub fn semantic_distance_matrix<S: AsRef<str>>(emb: &WordEmbeddings, words: &[S]) -> Matrix {
    semantic_distance_matrix_with(emb, words, &SemanticMatrixOptions::exact())
}

/// [`semantic_distance_matrix`] with an explicit backend choice.
///
/// The exact path is the seed implementation verbatim. The ANN path
/// builds an [`AnnIndex`] over the distinct vectors, keeps each word's
/// `opts.neighbors` nearest distances (exact, bitwise equal to the
/// dense path's values for those pairs), and fills every non-neighbour
/// pair with a per-row horizon — the distance past each word's k-th
/// neighbour — so far pairs stay far without being computed.
pub fn semantic_distance_matrix_with<S: AsRef<str>>(
    emb: &WordEmbeddings,
    words: &[S],
    opts: &SemanticMatrixOptions,
) -> Matrix {
    let n = words.len();
    let interned = intern(emb, words);
    let k = interned.vecs.len();
    let pair_dist = if use_ann(opts, k) {
        ann_pair_distances(&interned, opts)
    } else {
        exact_pair_distances(&interned)
    };
    let ids = &interned.ids;
    let mut d = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i + 1..n {
            // Same-id pairs hit the zero diagonal of `pair_dist`.
            let dist = pair_dist[ids[i] * k + ids[j]];
            d[(i, j)] = dist;
            d[(j, i)] = dist;
        }
    }
    d
}

fn use_ann(opts: &SemanticMatrixOptions, distinct: usize) -> bool {
    match opts.backend {
        SemanticBackend::Exact => false,
        SemanticBackend::Ann => true,
        SemanticBackend::Auto => distinct >= opts.auto_threshold,
    }
}

/// Square tile edge of the batched [`exact_pair_distances`] fill. Tiles
/// of 32×32 pairs keep both bands of vectors (32 × dim `f64`s each) hot
/// in cache while the upper triangle is swept.
const DIST_TILE: usize = 32;

/// One distance per distinct-id pair: words repeat across a record's
/// attributes and its perturbed variants, so the number of distinct
/// forms `k` is usually well below `n` and the expensive dot products
/// collapse from n²/2 to k²/2. Scattering the cached value into the
/// n×n matrix is bitwise-identical to recomputing it per position.
///
/// The upper triangle is filled in [`DIST_TILE`]-square tiles rather
/// than entry-at-a-time so each band of vectors is reused across a whole
/// tile of SIMD-dispatched dots (see `em_linalg::kernels`). Every entry
/// is an independent `dot` + scalar post-processing — no cross-entry
/// accumulation — so the tile traversal order is bitwise-irrelevant; the
/// in-module property test pins tiled ≡ per-entry.
fn exact_pair_distances(interned: &Interned) -> Vec<f64> {
    let (vecs, norms) = (&interned.vecs, &interned.norms);
    let k = vecs.len();
    let mut pair_dist = vec![0.0; k * k];
    let mut ta = 0usize;
    while ta < k {
        let ta1 = (ta + DIST_TILE).min(k);
        let mut tb = ta;
        while tb < k {
            let tb1 = (tb + DIST_TILE).min(k);
            for a in ta..ta1 {
                // Diagonal tiles only fill above the diagonal.
                let b_start = if tb <= a { a + 1 } else { tb };
                for b in b_start..tb1 {
                    let d = em_linalg::dot(&vecs[a], &vecs[b]);
                    let dist = pair_distance(d, norms[a], norms[b]);
                    pair_dist[a * k + b] = dist;
                    pair_dist[b * k + a] = dist;
                }
            }
            tb = tb1;
        }
        ta = ta1;
    }
    pair_dist
}

/// Entry-at-a-time reference fill the tiled builder is tested against.
#[cfg(test)]
fn exact_pair_distances_reference(interned: &Interned) -> Vec<f64> {
    let (vecs, norms) = (&interned.vecs, &interned.norms);
    let k = vecs.len();
    let mut pair_dist = vec![0.0; k * k];
    for a in 0..k {
        for b in a + 1..k {
            let d = em_linalg::dot(&vecs[a], &vecs[b]);
            let dist = pair_distance(d, norms[a], norms[b]);
            pair_dist[a * k + b] = dist;
            pair_dist[b * k + a] = dist;
        }
    }
    pair_dist
}

fn ann_pair_distances(interned: &Interned, opts: &SemanticMatrixOptions) -> Vec<f64> {
    let k = interned.vecs.len();
    let kn = opts.neighbors.max(1);
    let rows = ann_neighbor_rows(&interned.vecs, kn, &opts.ann);
    // Per-row horizon: anything past a word's k-th neighbour is at least
    // this far; a row with fewer than `kn` gathered neighbours has no
    // evidence and defaults to the maximum distance.
    let far: Vec<f64> = rows
        .iter()
        .map(|r| {
            if r.len() >= kn {
                r.last().map_or(1.0, |&(_, d)| d)
            } else {
                1.0
            }
        })
        .collect();
    let mut pair_dist = vec![0.0; k * k];
    for a in 0..k {
        for b in a + 1..k {
            let d = far[a].max(far[b]);
            pair_dist[a * k + b] = d;
            pair_dist[b * k + a] = d;
        }
    }
    // Neighbour entries overwrite the horizon with exact re-ranked
    // distances. The symmetric scatter is safe: `dot` is bitwise
    // symmetric, so when both rows list the pair they carry identical
    // bits and overwrite order cannot matter.
    for (i, row) in rows.iter().enumerate() {
        for &(j, d) in row {
            pair_dist[i * k + j as usize] = d;
            pair_dist[j as usize * k + i] = d;
        }
    }
    pair_dist
}

/// Build the LSH index over `vecs` and query every vector's `k` nearest
/// (self excluded), in parallel over rows with index-keyed slots so the
/// output is identical at any thread count.
fn ann_neighbor_rows(vecs: &[Vec<f64>], k: usize, ann: &AnnOptions) -> Vec<Vec<(u32, f64)>> {
    let n = vecs.len();
    if n == 0 {
        return Vec::new();
    }
    let index = AnnIndex::build(vecs, ann);
    let threads = if ann.threads == 0 {
        em_pool::default_threads()
    } else {
        ann.threads
    };
    let slots: Vec<OnceLock<Vec<(u32, f64)>>> = (0..n).map(|_| OnceLock::new()).collect();
    {
        let index = &index;
        em_pool::global().run(n, threads, &|i| {
            let _ = slots[i].set(index.top_k_of(i as u32, k));
        });
    }
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("pool ran every row"))
        .collect()
}

/// Per-word nearest-neighbour lists over a word list's distinct forms.
#[derive(Debug, Clone)]
pub struct SemanticNeighbors {
    /// Distinct-form id of each input position.
    pub word_of: Vec<usize>,
    /// Per distinct form: up to `k` `(distinct id, distance)` pairs
    /// ranked by `(distance, id)`, self excluded.
    pub neighbors: Vec<Vec<(u32, f64)>>,
}

/// Top-`k` semantic neighbours of every distinct word in `words`.
///
/// This is the sparse replacement for the full distance matrix when the
/// consumer only needs each word's nearest context. The exact backend
/// brute-forces each row with an O(k) selection; the ANN backend routes
/// through the LSH index. Both parallelise over rows deterministically.
pub fn semantic_topk<S: AsRef<str>>(
    emb: &WordEmbeddings,
    words: &[S],
    k: usize,
    opts: &SemanticMatrixOptions,
) -> SemanticNeighbors {
    let interned = intern(emb, words);
    let distinct = interned.vecs.len();
    let neighbors = if use_ann(opts, distinct) {
        ann_neighbor_rows(&interned.vecs, k.max(1), &opts.ann)
            .into_iter()
            .map(|mut r| {
                r.truncate(k);
                r
            })
            .collect()
    } else {
        exact_neighbor_rows(&interned, k, opts)
    };
    SemanticNeighbors {
        word_of: interned.ids,
        neighbors,
    }
}

fn exact_neighbor_rows(
    interned: &Interned,
    k: usize,
    opts: &SemanticMatrixOptions,
) -> Vec<Vec<(u32, f64)>> {
    let n = interned.vecs.len();
    let threads = if opts.ann.threads == 0 {
        em_pool::default_threads()
    } else {
        opts.ann.threads
    };
    let cmp = |a: &(u32, f64), b: &(u32, f64)| {
        a.1.partial_cmp(&b.1)
            .expect("pair distances are finite")
            .then(a.0.cmp(&b.0))
    };
    let slots: Vec<OnceLock<Vec<(u32, f64)>>> = (0..n).map(|_| OnceLock::new()).collect();
    {
        let (vecs, norms) = (&interned.vecs, &interned.norms);
        em_pool::global().run(n, threads, &|i| {
            let mut scored: Vec<(u32, f64)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    let d = pair_distance(em_linalg::dot(&vecs[i], &vecs[j]), norms[i], norms[j]);
                    (j as u32, d)
                })
                .collect();
            if k > 0 && scored.len() > k {
                scored.select_nth_unstable_by(k - 1, cmp);
                scored.truncate(k);
            }
            scored.sort_unstable_by(cmp);
            scored.truncate(k);
            let _ = slots[i].set(scored);
        });
    }
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("pool ran every row"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<String>> {
        // Brands co-occur with their product nouns; colours co-occur with
        // both; repeated enough for stable statistics.
        let raw = [
            "sony bravia tv black",
            "sony bravia tv silver",
            "samsung qled tv black",
            "samsung qled tv silver",
            "sony wh1000 headphones black",
            "bose qc45 headphones silver",
            "sony bravia tv",
            "samsung qled tv",
            "bose qc45 headphones",
            "sony wh1000 headphones",
        ];
        raw.iter().map(|s| em_text::tokenize(s)).collect()
    }

    fn train() -> WordEmbeddings {
        let c = corpus();
        WordEmbeddings::train(
            c.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 16,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn training_covers_vocabulary() {
        let e = train();
        assert!(e.contains("sony"));
        assert!(e.contains("tv"));
        assert!(!e.contains("unseen"));
        assert_eq!(e.dimensions(), 16);
        assert_eq!(e.vector("sony").len(), 16);
    }

    #[test]
    fn similarity_is_reflexive_and_bounded() {
        let e = train();
        assert_eq!(e.similarity("sony", "sony"), 1.0);
        let s = e.similarity("sony", "samsung");
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn distributionally_similar_words_are_closer() {
        let e = train();
        // "black" and "silver" occur in identical contexts; "black" and
        // "bravia" do not.
        let close = e.similarity("black", "silver");
        let far = e.similarity("black", "qc45");
        assert!(close > far, "close={close} far={far}");
    }

    #[test]
    fn oov_words_use_trigram_backoff() {
        let e = train();
        // Typo of an OOV brand should still be near the same OOV surface form.
        let same_ish = e.similarity("panasonic", "panasonik");
        let different = e.similarity("panasonic", "xyzzy");
        assert!(same_ish > different);
        assert!(same_ish > 0.5);
    }

    #[test]
    fn nearest_returns_sorted_topk() {
        let e = train();
        let nn = e.nearest("sony", 3);
        assert_eq!(nn.len(), 3);
        for w in nn.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(nn.iter().all(|(w, _)| w != "sony"));
    }

    #[test]
    fn trigram_vectors_are_normalised_and_deterministic() {
        let a = trigram_vector("bravia", 32);
        let b = trigram_vector("bravia", 32);
        assert_eq!(a, b);
        assert!((em_linalg::norm2(&a) - 1.0).abs() < 1e-12);
        assert_eq!(trigram_vector("", 0).len(), 0);
    }

    #[test]
    fn training_is_deterministic() {
        let e1 = train();
        let e2 = train();
        assert_eq!(e1.vector("tv"), e2.vector("tv"));
    }

    #[test]
    fn sparse_and_dense_training_agree_bitwise() {
        let c = corpus();
        let mk = |sparse| {
            WordEmbeddings::train(
                c.iter().map(|v| v.as_slice()),
                EmbeddingOptions {
                    dimensions: 16,
                    sparse,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let sp = mk(true);
        let dn = mk(false);
        assert_eq!(sp.vocab_size(), dn.vocab_size());
        for w in dn.words() {
            for (x, y) in sp.vector(w).iter().zip(dn.vector(w)) {
                assert_eq!(x.to_bits(), y.to_bits(), "vector mismatch for {w:?}");
            }
        }
    }

    #[test]
    fn tiny_corpus_falls_back_to_trigrams() {
        let c: Vec<Vec<String>> = vec![em_text::tokenize("solo")];
        let e = WordEmbeddings::train(
            c.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(e.contains("solo"));
        assert_eq!(e.vector("solo").len(), 8);
    }

    #[test]
    fn zero_dimensions_is_an_error() {
        let c = corpus();
        let err = WordEmbeddings::train(
            c.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 0,
                ..Default::default()
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn distance_matrix_is_symmetric_zero_diagonal() {
        let e = train();
        let words: Vec<String> = ["sony", "tv", "black", "sony"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let d = semantic_distance_matrix(&e, &words);
        assert_eq!(d.rows(), 4);
        for i in 0..4 {
            assert_eq!(d[(i, i)], 0.0);
            for j in 0..4 {
                assert!((d[(i, j)] - d[(j, i)]).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&d[(i, j)]));
            }
        }
        // Duplicate words have zero distance.
        assert_eq!(d[(0, 3)], 0.0);
    }

    use propcheck::prelude::*;

    proptest! {
        #[test]
        fn tiled_distance_fill_matches_per_entry_bitwise(
            k in 0usize..80,
            dims in 1usize..12,
            seed in 0u64..1000,
        ) {
            use em_rngs::{Rng, SeedableRng};
            let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
            let vecs: Vec<Vec<f64>> = (0..k)
                .map(|i| {
                    if i % 7 == 3 {
                        // Exercise the zero-norm convention inside tiles.
                        vec![0.0; dims]
                    } else {
                        (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect()
                    }
                })
                .collect();
            let norms: Vec<f64> = vecs.iter().map(|v| em_linalg::norm2(v)).collect();
            let interned = Interned { ids: (0..k).collect(), vecs, norms };
            let tiled = exact_pair_distances(&interned);
            let reference = exact_pair_distances_reference(&interned);
            prop_assert_eq!(tiled.len(), reference.len());
            for (x, y) in tiled.iter().zip(&reference) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
