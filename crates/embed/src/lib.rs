//! # em-embed
//!
//! Corpus-trained word embeddings for the semantic-similarity knowledge
//! source of CREW: co-occurrence counting with distance weighting, the PPMI
//! transform with context-distribution smoothing, a randomized truncated
//! SVD factorisation, and hashed character-trigram back-off vectors for
//! out-of-vocabulary words.
//!
//! This substitutes the pre-trained fastText vectors a Python
//! implementation would download: CREW only consumes pairwise cosine
//! similarity between the words of one candidate pair, and PPMI-SVD on the
//! dataset corpus reproduces that signal offline.
//!
//! ```
//! use em_embed::{WordEmbeddings, EmbeddingOptions};
//! let corpus: Vec<Vec<String>> = vec![
//!     em_text::tokenize("sonix tv black"),
//!     em_text::tokenize("sonix tv white"),
//! ];
//! let emb = WordEmbeddings::train(
//!     corpus.iter().map(|v| v.as_slice()),
//!     EmbeddingOptions { dimensions: 8, ..Default::default() },
//! ).unwrap();
//! assert!(emb.similarity("black", "white") >= -1.0);
//! assert_eq!(emb.similarity("tv", "tv"), 1.0);
//! ```

pub mod ann;
pub mod cooc;
pub mod embeddings;
pub mod io;

pub use ann::{pair_distance, AnnIndex, AnnOptions, Hyperplanes};
pub use cooc::{CoocOptions, Cooccurrence};
pub use embeddings::{
    semantic_distance_matrix, semantic_distance_matrix_with, semantic_topk, trigram_vector,
    EmbeddingOptions, SemanticBackend, SemanticMatrixOptions, SemanticNeighbors, WordEmbeddings,
};
pub use io::{from_text, to_text};

/// Errors from embedding training.
#[derive(Debug, Clone, PartialEq)]
pub enum EmbedError {
    /// Requested zero dimensions.
    InvalidDimensions(usize),
    /// Text-format parse failure.
    ParseError { line: usize, message: String },
    /// Underlying factorisation failed.
    Linalg(em_linalg::LinalgError),
}

impl std::fmt::Display for EmbedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbedError::InvalidDimensions(d) => write!(f, "invalid embedding dimensions: {d}"),
            EmbedError::ParseError { line, message } => {
                write!(f, "embedding text parse error at line {line}: {message}")
            }
            EmbedError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for EmbedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmbedError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use propcheck::prelude::*;

    proptest! {
        #[test]
        fn trigram_vector_is_unit_or_zero(word in "[a-z0-9]{0,10}", dims in 1usize..64) {
            let v = trigram_vector(&word, dims);
            prop_assert_eq!(v.len(), dims);
            let n = em_linalg::norm2(&v);
            prop_assert!((n - 1.0).abs() < 1e-9 || n == 0.0);
        }

        #[test]
        fn similarity_symmetric(a in "[a-z]{1,8}", b in "[a-z]{1,8}") {
            let corpus: Vec<Vec<String>> = vec![
                em_text::tokenize("alpha beta gamma"),
                em_text::tokenize("beta gamma delta"),
            ];
            let e = WordEmbeddings::train(
                corpus.iter().map(|v| v.as_slice()),
                EmbeddingOptions { dimensions: 8, ..Default::default() },
            ).unwrap();
            let s1 = e.similarity(&a, &b);
            let s2 = e.similarity(&b, &a);
            prop_assert!((s1 - s2).abs() < 1e-12);
            prop_assert!((-1.0..=1.0).contains(&s1));
        }
    }
}
