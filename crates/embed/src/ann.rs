//! Deterministic LSH (random-hyperplane) approximate-nearest-neighbour
//! index over embedding vectors.
//!
//! The full pairwise cosine-distance matrix CREW's semantic knowledge
//! source builds is O(n²·d) in vocabulary size; this index replaces the
//! all-pairs scan for large vocabularies with signature lookups plus an
//! exact re-rank of a bounded candidate set.
//!
//! ## Signature scheme
//!
//! Every vector is sign-hashed against `tables × bits` random
//! hyperplanes drawn from the workspace PRNG ([`em_rngs::rngs::StdRng`],
//! seeded from [`AnnOptions::seed`]): bit `b` of the table-`t` signature
//! is set iff `dot(planes[t][b], v) >= 0`. Two vectors at cosine angle
//! `θ` agree on one bit with probability `1 − θ/π`, so each table is an
//! AND over `bits` bits (precision) and the index is an OR over `tables`
//! tables (recall) — the classic banding construction.
//!
//! ## Determinism anchors
//!
//! - Hyperplanes come from one sequential PRNG stream: same seed ⇒ same
//!   planes, independent of thread count.
//! - Signatures are computed in parallel into index-keyed slots and
//!   bucketed by ascending vector id, so every bucket's member list is
//!   id-sorted and identical at any thread count.
//! - Queries gather candidates, sort+dedup them by id, cap the re-rank
//!   set by (collision count desc, id asc), and rank by
//!   `(distance bits, id)` — no HashMap iteration order ever reaches the
//!   output.
//! - The re-rank distance is the exact pair distance of the dense path
//!   (unrolled [`em_linalg::dot`] + cached norms), so a pair scored by
//!   both paths gets bitwise-identical distances.

use em_linalg::{dot, norm2};
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Options of one LSH index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnOptions {
    /// Independent hash tables (OR stage): more tables, more recall.
    pub tables: usize,
    /// Hyperplane bits per table (AND stage): more bits, smaller buckets.
    pub bits: u32,
    /// Seed of the hyperplane draw.
    pub seed: u64,
    /// Cap on exactly re-ranked candidates per query (the top by table
    /// collision count are kept). Raised to `k` if smaller.
    pub rerank: usize,
    /// Thread budget for the build phase (0 = auto). Output is bitwise
    /// identical at any value.
    pub threads: usize,
}

impl Default for AnnOptions {
    fn default() -> Self {
        AnnOptions {
            tables: 16,
            bits: 8,
            seed: 0xa11ce,
            rerank: 512,
            threads: 0,
        }
    }
}

/// The shared random-hyperplane family: `tables × bits` hyperplanes of
/// dimensionality `dims`, drawn once from a seed. Exposed so other
/// signature consumers (the `em-stream` LSH blocker) hash with exactly
/// the same scheme.
#[derive(Debug, Clone)]
pub struct Hyperplanes {
    dims: usize,
    tables: usize,
    bits: u32,
    /// Flat `[table][bit][dim]` layout.
    planes: Vec<f64>,
}

impl Hyperplanes {
    /// Draw the family. One sequential PRNG stream: deterministic for a
    /// seed, independent of the caller's threading.
    pub fn generate(dims: usize, tables: usize, bits: u32, seed: u64) -> Hyperplanes {
        assert!(
            bits as usize <= 64,
            "signatures are u64: bits must be <= 64"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4c53_485f_616e_6e5f);
        let planes = (0..tables * bits as usize * dims)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        Hyperplanes {
            dims,
            tables,
            bits,
            planes,
        }
    }

    pub fn dims(&self) -> usize {
        self.dims
    }

    pub fn tables(&self) -> usize {
        self.tables
    }

    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Sign signature of `v` under table `t`. Scale-invariant: `v` and
    /// `c·v` (c > 0) hash identically, so callers may pass unnormalised
    /// sums.
    pub fn signature(&self, table: usize, v: &[f64]) -> u64 {
        assert_eq!(v.len(), self.dims, "signature: dimension mismatch");
        em_obs::counter!("ann/signatures", 1);
        let mut sig = 0u64;
        let stride = self.bits as usize * self.dims;
        for b in 0..self.bits as usize {
            let plane = &self.planes[table * stride + b * self.dims..][..self.dims];
            if dot(plane, v) >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }
}

/// The exact pair distance both the dense matrix path and the ANN
/// re-rank use: cosine mapped to `[0, 1]`, with the zero-norm convention
/// of `em_linalg::cosine` (similarity 0 ⇒ distance 1/2).
#[inline]
pub fn pair_distance(d: f64, na: f64, nb: f64) -> f64 {
    if na == 0.0 || nb == 0.0 {
        0.5
    } else {
        let c = (d / (na * nb)).clamp(-1.0, 1.0);
        (1.0 - c) / 2.0
    }
}

/// A built LSH index over `n` vectors of shared dimensionality.
#[derive(Debug, Clone)]
pub struct AnnIndex {
    dims: usize,
    rerank: usize,
    hyperplanes: Hyperplanes,
    /// Flat `n × dims` vector storage (cache-friendly re-rank scans).
    data: Vec<f64>,
    norms: Vec<f64>,
    /// Per table: signature → id-sorted member list.
    buckets: Vec<HashMap<u64, Vec<u32>>>,
}

impl AnnIndex {
    /// Build the index. Signatures are computed in parallel over the
    /// shared pool; buckets are filled in ascending id order, so the
    /// built index is bitwise-identical at any thread count.
    pub fn build(vectors: &[Vec<f64>], opts: &AnnOptions) -> AnnIndex {
        let _span = em_obs::span!("ann/build");
        let n = vectors.len();
        let dims = vectors.first().map_or(0, |v| v.len());
        let hyperplanes = Hyperplanes::generate(dims, opts.tables, opts.bits, opts.seed);

        let mut data = Vec::with_capacity(n * dims);
        let mut norms = Vec::with_capacity(n);
        for v in vectors {
            assert_eq!(v.len(), dims, "AnnIndex::build: ragged vector set");
            data.extend_from_slice(v);
            norms.push(norm2(v));
        }

        let threads = if opts.threads == 0 {
            em_pool::default_threads()
        } else {
            opts.threads
        };
        let sig_slots: Vec<OnceLock<Vec<u64>>> = (0..n).map(|_| OnceLock::new()).collect();
        {
            let planes = &hyperplanes;
            let data = &data;
            em_pool::global().run(n, threads, &|i| {
                let v = &data[i * dims..][..dims];
                let sigs: Vec<u64> = (0..planes.tables())
                    .map(|t| planes.signature(t, v))
                    .collect();
                let _ = sig_slots[i].set(sigs);
            });
        }

        let mut buckets: Vec<HashMap<u64, Vec<u32>>> = vec![HashMap::new(); opts.tables];
        for (i, slot) in sig_slots.into_iter().enumerate() {
            let sigs = slot.into_inner().expect("pool ran every vector");
            for (t, sig) in sigs.into_iter().enumerate() {
                buckets[t].entry(sig).or_default().push(i as u32);
            }
        }
        em_obs::counter!("ann/indexed", n as u64);

        AnnIndex {
            dims,
            rerank: opts.rerank,
            hyperplanes,
            data,
            norms,
            buckets,
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The stored vector of id `i`.
    pub fn vector(&self, i: u32) -> &[f64] {
        &self.data[i as usize * self.dims..][..self.dims]
    }

    /// One table's buckets in ascending signature order (the determinism
    /// tests compare these across seeds and thread counts).
    pub fn table_buckets(&self, table: usize) -> Vec<(u64, &[u32])> {
        let mut out: Vec<(u64, &[u32])> = self.buckets[table]
            .iter()
            .map(|(sig, members)| (*sig, members.as_slice()))
            .collect();
        out.sort_unstable_by_key(|(sig, _)| *sig);
        out
    }

    /// Approximate `k` nearest neighbours of an external query vector,
    /// as `(id, distance)` ranked by `(distance, id)`.
    pub fn top_k(&self, query: &[f64], k: usize) -> Vec<(u32, f64)> {
        self.query(query, norm2(query), None, |scored| scored.truncate(k), k)
    }

    /// Approximate `k` nearest neighbours of indexed vector `id`
    /// (excluding itself).
    pub fn top_k_of(&self, id: u32, k: usize) -> Vec<(u32, f64)> {
        let q: &[f64] = self.vector(id);
        // Borrow juggling: the closure below must not borrow `self`.
        let qn = self.norms[id as usize];
        self.query(q, qn, Some(id), |scored| scored.truncate(k), k)
    }

    /// Every gathered neighbour within `max_dist` of the query, ranked
    /// by `(distance, id)`. Approximate like [`AnnIndex::top_k`]: only
    /// bucket collisions are considered.
    pub fn radius(&self, query: &[f64], max_dist: f64) -> Vec<(u32, f64)> {
        self.query(
            query,
            norm2(query),
            None,
            |scored| scored.retain(|&(_, d)| d <= max_dist),
            usize::MAX,
        )
    }

    fn query(
        &self,
        q: &[f64],
        qnorm: f64,
        exclude: Option<u32>,
        finish: impl FnOnce(&mut Vec<(u32, f64)>),
        k: usize,
    ) -> Vec<(u32, f64)> {
        assert_eq!(q.len(), self.dims, "query: dimension mismatch");
        let _span = em_obs::span!("ann/query");
        em_obs::counter!("ann/queries", 1);

        // Gather bucket hits across tables; run-length encode into
        // (id, collision count) after an id sort.
        let mut hits: Vec<u32> = Vec::new();
        for (t, table) in self.buckets.iter().enumerate() {
            let sig = self.hyperplanes.signature(t, q);
            if let Some(members) = table.get(&sig) {
                hits.extend_from_slice(members);
            }
        }
        hits.sort_unstable();
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        for id in hits {
            if Some(id) == exclude {
                continue;
            }
            match candidates.last_mut() {
                Some((last, count)) if *last == id => *count += 1,
                _ => candidates.push((id, 1)),
            }
        }
        em_obs::counter!("ann/candidates", candidates.len() as u64);

        // Cap the exact re-rank set, keeping the candidates most tables
        // agree on (deterministic tie-break by id).
        let cap = self.rerank.max(k.min(self.len()));
        if candidates.len() > cap {
            candidates.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            candidates.truncate(cap);
        }
        em_obs::counter!("ann/reranked", candidates.len() as u64);

        // Exact re-rank through the shared unrolled-dot pair distance.
        let mut scored: Vec<(u32, f64)> = candidates
            .into_iter()
            .map(|(id, _)| {
                let v = self.vector(id);
                let d = pair_distance(dot(q, v), qnorm, self.norms[id as usize]);
                (id, d)
            })
            .collect();
        scored.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("pair distances are finite")
                .then(a.0.cmp(&b.0))
        });
        finish(&mut scored);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clustered vector set: `centers` well-separated directions, each
    /// with `per` members jittered a little — the structure embeddings
    /// actually have, and the regime LSH is built for.
    fn clustered(centers: usize, per: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<Vec<f64>> = (0..centers)
            .map(|_| (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let mut out = Vec::with_capacity(centers * per);
        for c in &base {
            for _ in 0..per {
                out.push(
                    c.iter()
                        .map(|x| x + rng.gen_range(-0.05..0.05))
                        .collect::<Vec<f64>>(),
                );
            }
        }
        out
    }

    fn exact_top_k(vectors: &[Vec<f64>], i: usize, k: usize) -> Vec<u32> {
        let ni = norm2(&vectors[i]);
        let mut scored: Vec<(u32, f64)> = vectors
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(j, v)| (j as u32, pair_distance(dot(&vectors[i], v), ni, norm2(v))))
            .collect();
        scored.sort_unstable_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored.into_iter().map(|(j, _)| j).collect()
    }

    #[test]
    fn finds_cluster_neighbours() {
        let vectors = clustered(8, 10, 24, 5);
        let index = AnnIndex::build(&vectors, &AnnOptions::default());
        // Every vector's nearest approximate neighbours are in its own
        // cluster of ten.
        for i in [0usize, 15, 42, 79] {
            let nn = index.top_k_of(i as u32, 5);
            assert_eq!(nn.len(), 5, "vector {i} got {} neighbours", nn.len());
            for (id, d) in &nn {
                assert_eq!(*id as usize / 10, i / 10, "cross-cluster neighbour");
                assert!(*d < 0.1, "cluster member at distance {d}");
            }
        }
    }

    #[test]
    fn recall_on_clustered_set_is_high() {
        let vectors = clustered(12, 12, 32, 9);
        let index = AnnIndex::build(&vectors, &AnnOptions::default());
        let k = 8;
        let mut hit = 0usize;
        let mut total = 0usize;
        for i in 0..vectors.len() {
            let exact = exact_top_k(&vectors, i, k);
            let approx: Vec<u32> = index
                .top_k_of(i as u32, k)
                .into_iter()
                .map(|(j, _)| j)
                .collect();
            hit += exact.iter().filter(|e| approx.contains(e)).count();
            total += exact.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.95, "recall {recall}");
    }

    #[test]
    fn same_seed_same_buckets_any_thread_count() {
        let vectors = clustered(6, 8, 16, 3);
        let mk = |threads| {
            AnnIndex::build(
                &vectors,
                &AnnOptions {
                    threads,
                    ..Default::default()
                },
            )
        };
        let a = mk(1);
        let b = mk(4);
        for t in 0..16 {
            assert_eq!(a.table_buckets(t), b.table_buckets(t));
        }
        let qa = a.top_k_of(7, 4);
        let qb = b.top_k_of(7, 4);
        assert_eq!(qa.len(), qb.len());
        for ((ia, da), (ib, db)) in qa.iter().zip(&qb) {
            assert_eq!(ia, ib);
            assert_eq!(da.to_bits(), db.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let vectors = clustered(4, 6, 16, 3);
        let a = AnnIndex::build(&vectors, &AnnOptions::default());
        let b = AnnIndex::build(
            &vectors,
            &AnnOptions {
                seed: 99,
                ..Default::default()
            },
        );
        assert!((0..16).any(|t| a.table_buckets(t) != b.table_buckets(t)));
    }

    #[test]
    fn radius_filters_by_distance() {
        let vectors = clustered(5, 8, 16, 11);
        let index = AnnIndex::build(&vectors, &AnnOptions::default());
        let within = index.radius(&vectors[0], 0.1);
        assert!(within.iter().all(|&(_, d)| d <= 0.1));
        assert!(within.iter().any(|&(id, _)| id != 0));
        // The query vector itself is in the index and at distance 0.
        assert_eq!(within[0].0, 0);
        assert_eq!(within[0].1, 0.0);
    }

    #[test]
    fn rerank_cap_bounds_candidates_deterministically() {
        let vectors = clustered(2, 40, 16, 17);
        let opts = AnnOptions {
            bits: 2, // huge buckets: everything collides
            rerank: 10,
            ..Default::default()
        };
        let index = AnnIndex::build(&vectors, &opts);
        let a = index.top_k_of(0, 5);
        let b = index.top_k_of(0, 5);
        assert_eq!(a, b);
        assert!(a.len() <= 5);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = AnnIndex::build(&[], &AnnOptions::default());
        assert!(empty.is_empty());
        let one = AnnIndex::build(&[vec![1.0, 0.0]], &AnnOptions::default());
        assert_eq!(one.len(), 1);
        assert!(one.top_k_of(0, 3).is_empty());
        let zero_norm = AnnIndex::build(&[vec![0.0; 4], vec![1.0; 4]], &AnnOptions::default());
        for (_, d) in zero_norm.top_k(&[0.0; 4], 2) {
            assert_eq!(d, 0.5, "zero-norm convention");
        }
    }

    #[test]
    fn signature_is_scale_invariant() {
        let planes = Hyperplanes::generate(8, 2, 16, 7);
        let v: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let scaled: Vec<f64> = v.iter().map(|x| x * 17.0).collect();
        for t in 0..2 {
            assert_eq!(planes.signature(t, &v), planes.signature(t, &scaled));
        }
    }
}
