#!/usr/bin/env bash
# Required pre-merge gate: the tier-1 build/test cycle, hermetically.
#
#   ./scripts/ci.sh           # fmt check + release build + full test suite
#   ./scripts/ci.sh --bench   # additionally smoke-run the experiment driver
#
# Everything runs with --locked --offline: the workspace has no external
# dependencies (see DESIGN.md, "Hermetic build substrate"), so any attempt
# to reach a registry is a regression this script must catch.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release (locked, offline)"
cargo build --release --locked --offline

echo "==> cargo test -q (locked, offline)"
cargo test -q --locked --offline

if [[ "${1:-}" == "--bench" ]]; then
    echo "==> bench smoke (run_all --smoke)"
    cargo run --release --locked --offline -p em-bench --bin run_all -- --smoke
    python3 -c "import json; json.load(open('results/BENCH_run_all.json'))" \
        && echo "BENCH_run_all.json is well-formed"
fi

echo "==> ci green"
