#!/usr/bin/env bash
# Required pre-merge gate: the tier-1 build/test cycle, hermetically.
#
#   ./scripts/ci.sh           # fmt check + release build + full test suite
#   ./scripts/ci.sh --bench   # additionally smoke-run the experiment driver
#
# Everything runs with --locked --offline: the workspace has no external
# dependencies (see DESIGN.md, "Hermetic build substrate"), so any attempt
# to reach a registry is a regression this script must catch.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release (locked, offline)"
cargo build --release --locked --offline

echo "==> cargo test -q (locked, offline)"
cargo test -q --locked --offline

echo "==> kernel dispatch equivalence (EM_KERNEL=scalar vs default)"
# The propcheck suites pin scalar ≡ AVX2 bitwise through the per-backend
# entry points; the two legs below additionally exercise the EM_KERNEL
# override path and the detected-default dispatch in every dispatched
# call site (matrix, stats, sparse, metrics).
EM_KERNEL=scalar cargo test -q -p em-linalg --locked --offline
cargo test -q -p em-linalg --locked --offline

echo "==> obs no-op build (probes compile away with em-obs/noop)"
cargo check -q -p em-bench --features obs-noop --locked --offline

echo "==> trace smoke (exp_t1 --smoke --trace) + schema check"
cargo run --release --locked --offline -p em-bench --bin exp_t1 -- --smoke --trace
python3 - results/TRACE_exp_t1_smoke.json <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
for field in ("name", "spans", "counters", "gauges"):
    assert field in trace, f"missing field {field!r}"
assert trace["spans"], "traced run recorded no spans"
paths = [s["path"] for s in trace["spans"]]
assert paths == sorted(paths), "spans must be sorted by path"
all_paths = set(paths)
for s in trace["spans"]:
    for field in ("path", "depth", "count", "total_ns", "self_ns"):
        assert field in s, f"span missing {field!r}: {s}"
    assert s["count"] > 0, f"zero-count span emitted: {s}"
    assert s["self_ns"] <= s["total_ns"], f"self > total: {s}"
    if s["depth"] > 0:
        # Every child's parent node must appear in the tree too.
        assert any(s["path"].startswith(p + "/") for p in all_paths), \
            f"orphan child span: {s['path']}"
for table in ("counters", "gauges"):
    for entry in trace[table]:
        assert "name" in entry and "value" in entry, f"bad {table} entry: {entry}"
print(f"trace schema ok: {len(trace['spans'])} spans, "
      f"{len(trace['counters'])} counters, {len(trace['gauges'])} gauges")
EOF

# The plain legs below overwrite the stream and serve smoke artifacts,
# so snapshot the committed baselines first for the --bench regression
# gates.
if [[ "${1:-}" == "--bench" ]]; then
    stream_baseline=$(mktemp)
    stream_trace_baseline=$(mktemp)
    cp results/BENCH_stream_smoke.json "$stream_baseline"
    cp results/TRACE_run_stream_smoke.json "$stream_trace_baseline"
    serve_baseline=$(mktemp)
    cp results/BENCH_serve_smoke.json "$serve_baseline"
fi

echo "==> stream smoke (run_stream --smoke --trace) + stage schema check"
cargo run --release --locked --offline -p em-bench --bin run_stream -- --smoke --trace
python3 - results/TRACE_run_stream_smoke.json <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
paths = {s["path"] for s in trace["spans"]}
for stage in ("stream", "stream/block", "stream/block/lsh",
              "stream/match", "stream/explain"):
    assert stage in paths, f"missing pipeline stage span {stage!r}"
counters = {c["name"]: c["value"] for c in trace["counters"]}
for name in ("stream/blocks", "stream/candidates", "stream/matches",
             "ann/signatures"):
    assert counters.get(name, 0) > 0, f"counter {name!r} missing or zero"
# Accounting counters may legitimately read zero at smoke scale, but
# they must be reported.
for name in ("stream/block/skipped_stop_tokens", "stream/block/lsh_blocks",
             "stream/block/lsh_skipped"):
    assert name in counters, f"counter {name!r} missing"
print(f"stream trace ok: {len(paths)} spans, "
      f"{counters['stream/candidates']} candidates, "
      f"{counters['stream/matches']} matches, "
      f"{counters['ann/signatures']} lsh signatures")
EOF

echo "==> serve smoke (load_gen --smoke --trace) + coalescing schema check"
# The bin itself hard-fails unless the session stores prove query
# sharing (hits + coalesced > 0 under concurrent identical pairs); this
# leg additionally checks the serve span tree and its counters.
cargo run --release --locked --offline -p em-bench --bin load_gen -- --smoke --trace
python3 - results/TRACE_serve_smoke.json <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
paths = {s["path"]: s for s in trace["spans"]}
for root in ("serve/accept", "serve/parse", "serve/coalesce", "serve/query"):
    assert root in paths, f"missing serve root span {root!r}"
    assert paths[root]["depth"] == 0, f"{root!r} is not a root span"
    assert paths[root]["count"] > 0, f"{root!r} never fired"
counters = {c["name"]: c["value"] for c in trace["counters"]}
for name in ("serve/requests", "serve/batches", "serve/connections"):
    assert counters.get(name, 0) > 0, f"counter {name!r} missing or zero"
# Reported even when nothing merged in a window; at load_gen's
# clients > pairs ratio something always does.
assert "serve/coalesced" in counters, "counter 'serve/coalesced' missing"
print(f"serve trace ok: {counters['serve/requests']} requests in "
      f"{counters['serve/batches']} batches, "
      f"{counters['serve/coalesced']} coalesced duplicates, "
      f"{counters['serve/connections']} connections")
EOF

# Compare a fresh smoke run against its committed baseline, failing on
# >2x per-entry regressions. Smoke medians are single-shot and noisy; 2x
# catches algorithmic blow-ups (accidental O(n^2), lost cache, lost
# batching) without flaking on scheduler jitter. Entries below MIN_NS are
# reported but not gated: at ms scale a single-shot median is pure noise,
# and under the memoized evaluation substrate per-experiment attribution
# is schedule-dependent anyway (whichever runner goes first pays the
# shared store misses). The run_all/total wall-clock row is what the
# substrate is accountable for, and it always clears the floor.
#
# Optional args 3/4 override the ratio threshold and the ns floor: the
# kernels microbench gates at (3.0, 1e6) because its rows are µs-to-ms
# scale — a 50 ms floor would exempt every row, and at smoke sample
# counts sub-ms medians can legitimately wobble ~2x.
bench_gate() {
    local baseline_json="$1" current_json="$2"
    local threshold="${3:-2.0}" min_ns="${4:-50e6}"
    python3 - "$baseline_json" "$current_json" "$threshold" "$min_ns" <<'EOF'
import json, sys

THRESHOLD = float(sys.argv[3])
MIN_NS = float(sys.argv[4])
base = {(r["group"], r["id"]): r["median_ns"]
        for r in json.load(open(sys.argv[1]))["results"]}
cur = {(r["group"], r["id"]): r["median_ns"]
       for r in json.load(open(sys.argv[2]))["results"]}
failures = []
for key, b_ns in sorted(base.items()):
    c_ns = cur.get(key)
    if c_ns is None:
        failures.append(f"{key[0]}/{key[1]}: missing from current run")
        continue
    ratio = c_ns / b_ns if b_ns > 0 else 1.0
    gated = max(b_ns, c_ns) >= MIN_NS
    flag = " REGRESSION" if gated and ratio > THRESHOLD else \
           ("" if gated else " (below gate floor)")
    print(f"  {key[0]}/{key[1]:<5} {b_ns/1e6:9.1f}ms -> {c_ns/1e6:9.1f}ms"
          f"  {ratio:5.2f}x{flag}")
    if gated and ratio > THRESHOLD:
        failures.append(f"{key[0]}/{key[1]}: {ratio:.2f}x slower")
if failures:
    print("bench regression gate FAILED:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("bench regression gate passed")
EOF
}

# On a bench-gate failure, attribute the regression: print the top-5
# per-stage deltas of the fresh trace against the committed trace
# baseline, so "run_all/total regressed 2x" comes with "perturbation
# stage regressed 2x, clustering flat".
trace_deltas() {
    local baseline_json="$1" current_json="$2"
    python3 - "$baseline_json" "$current_json" <<'EOF'
import json, sys

base = {s["path"]: s["total_ns"] for s in json.load(open(sys.argv[1]))["spans"]}
cur = {s["path"]: s["total_ns"] for s in json.load(open(sys.argv[2]))["spans"]}
deltas = []
for path in sorted(set(base) | set(cur)):
    b, c = base.get(path, 0), cur.get(path, 0)
    ratio = c / b if b > 0 else float("inf") if c > 0 else 1.0
    deltas.append((abs(c - b), ratio, path, b, c))
deltas.sort(reverse=True)
print("top stage deltas vs committed trace baseline:", file=sys.stderr)
for _, ratio, path, b, c in deltas[:5]:
    print(f"  {path:<40} {b/1e6:9.1f}ms -> {c/1e6:9.1f}ms  {ratio:5.2f}x",
          file=sys.stderr)
EOF
}

if [[ "${1:-}" == "--bench" ]]; then
    echo "==> bench smoke (run_all --smoke --trace) + regression gate"
    baseline=$(mktemp)
    trace_baseline=$(mktemp)
    cp results/BENCH_run_all_smoke.json "$baseline"
    cp results/TRACE_run_all_smoke.json "$trace_baseline"
    cargo run --release --locked --offline -p em-bench --bin run_all -- --smoke --trace
    # The gate covers the per-experiment rows AND the run_all/total
    # wall-clock row (the memoized-substrate headline number); fail
    # loudly if the driver ever stops emitting the total.
    grep -q '"group": "run_all", "id": "total"' results/BENCH_run_all_smoke.json \
        || { echo "run_all/total row missing from bench JSON" >&2; exit 1; }
    bench_gate "$baseline" results/BENCH_run_all_smoke.json \
        || { trace_deltas "$trace_baseline" results/TRACE_run_all_smoke.json; exit 1; }
    # The perturbation-query stage is the hot path the interned-token /
    # unrolled-kernel work optimises; gate its self-time explicitly so a
    # regression there can't hide inside a flat run_all/total (the
    # memoized substrate spends most of the wall clock elsewhere).
    echo "==> perturb/query self-time gate (vs committed trace baseline)"
    python3 - "$trace_baseline" results/TRACE_run_all_smoke.json <<'EOF'
import json, sys

PATH = "store/explain/perturb/query"

def self_ns(path):
    for s in json.load(open(path))["spans"]:
        if s["path"] == PATH:
            return s["self_ns"], s["count"]
    sys.exit(f"span {PATH!r} missing from {path}")

(b, bc), (c, cc) = self_ns(sys.argv[1]), self_ns(sys.argv[2])
ratio = c / b if b > 0 else 1.0
print(f"  {PATH}: {b/1e6:.1f}ms/{bc} calls -> {c/1e6:.1f}ms/{cc} calls"
      f"  {ratio:5.2f}x")
if ratio > 2.0:
    print(f"perturb/query self-time regressed {ratio:.2f}x", file=sys.stderr)
    sys.exit(1)
print("perturb/query self-time gate passed")
EOF
    rm -f "$baseline" "$trace_baseline"

    echo "==> artifact identity (EM_KERNEL=scalar at a different --jobs)"
    # Every experiment CSV value must be bitwise independent of the SIMD
    # backend and of worker-pool scheduling: snapshot the CSVs from the
    # default-dispatch run above, re-run the suite with the scalar
    # backend at a different job count, and compare each artifact
    # cell-by-cell. Recorded wall-clock columns (`seconds`, `secs/pair`)
    # are excluded — they differ between any two runs of the same
    # binary; every other cell must match to the byte.
    csv_snapshot=$(mktemp -d)
    cp results/*.csv "$csv_snapshot"/
    bench_snapshot=$(mktemp)
    trace_snapshot=$(mktemp)
    cp results/BENCH_run_all_smoke.json "$bench_snapshot"
    cp results/TRACE_run_all_smoke.json "$trace_snapshot"
    EM_KERNEL=scalar cargo run --release --locked --offline -p em-bench \
        --bin run_all -- --smoke --trace --jobs 2
    python3 - "$csv_snapshot" results <<'EOF'
import csv, pathlib, sys

a_dir, b_dir = map(pathlib.Path, sys.argv[1:3])
names = sorted(a_dir.glob("*.csv"))
for fa in names:
    ra = list(csv.reader(open(fa)))
    rb = list(csv.reader(open(b_dir / fa.name)))
    assert ra[0] == rb[0] and len(ra) == len(rb), \
        f"{fa.name}: structure differs under EM_KERNEL=scalar"
    timing = {i for i, h in enumerate(ra[0]) if h == "seconds" or "secs" in h}
    for row, (la, lb) in enumerate(zip(ra[1:], rb[1:]), start=2):
        for i, (ca, cb) in enumerate(zip(la, lb)):
            assert i in timing or ca == cb, \
                (f"{fa.name}:{row} col {ra[0][i]!r}: {ca!r} != {cb!r} "
                 f"under EM_KERNEL=scalar at --jobs 2")
print(f"artifact identity ok: {len(names)} CSVs bitwise equal on value columns")
EOF
    # Restore the default-dispatch smoke timings so the tree reflects
    # the canonical run, not the scalar re-run.
    cp "$bench_snapshot" results/BENCH_run_all_smoke.json
    cp "$trace_snapshot" results/TRACE_run_all_smoke.json
    rm -rf "$csv_snapshot"
    rm -f "$bench_snapshot" "$trace_snapshot"

    echo "==> stream regression gate (vs committed baseline)"
    # Gates the fresh artifacts from the plain stream leg above against
    # the pre-run snapshot of the committed baselines.
    baseline="$stream_baseline"
    trace_baseline="$stream_trace_baseline"
    # The wall-clock total and the memory-discipline row must both be
    # present; the bin additionally hard-fails if the store budget or
    # the RSS cap is exceeded, so this gate is about *regressions*.
    grep -q '"group": "stream", "id": "total"' results/BENCH_stream_smoke.json \
        || { echo "stream/total row missing from bench JSON" >&2; exit 1; }
    grep -q '"group": "stream", "id": "peak_rss_bytes"' results/BENCH_stream_smoke.json \
        || { echo "stream/peak_rss_bytes row missing from bench JSON" >&2; exit 1; }
    bench_gate "$baseline" results/BENCH_stream_smoke.json \
        || { trace_deltas "$trace_baseline" results/TRACE_run_stream_smoke.json; exit 1; }
    # peak_rss_bytes sits below bench_gate's ns floor at smoke scale, so
    # gate it explicitly: 2x + 32 MiB slack flags a lost memory bound
    # (store budget ignored, digests ballooning) without flaking on
    # allocator arena noise at a ~10 MB baseline.
    python3 - "$baseline" results/BENCH_stream_smoke.json <<'EOF'
import json, sys

def rss(path):
    for r in json.load(open(path))["results"]:
        if (r["group"], r["id"]) == ("stream", "peak_rss_bytes"):
            return r["median_ns"]
    sys.exit(f"stream/peak_rss_bytes missing from {path}")

b, c = rss(sys.argv[1]), rss(sys.argv[2])
if c > 2.0 * b + (32 << 20):
    print(f"peak RSS regressed: {b/1e6:.1f}MB -> {c/1e6:.1f}MB", file=sys.stderr)
    sys.exit(1)
print(f"peak RSS gate ok: {b/1e6:.1f}MB -> {c/1e6:.1f}MB")
EOF
    rm -f "$baseline" "$trace_baseline"

    echo "==> serve regression gate (vs committed baseline)"
    # Gates the fresh artifacts from the plain serve leg above against
    # the pre-run snapshot of the committed baseline. Latency rows are
    # ms-scale single-shot percentiles — gate like the kernels bench.
    for row in explain_p99 predict_p99 ns_per_request shared_queries; do
        grep -q "\"group\": \"serve\", \"id\": \"$row\"" results/BENCH_serve_smoke.json \
            || { echo "serve/$row row missing from bench JSON" >&2; exit 1; }
    done
    bench_gate "$serve_baseline" results/BENCH_serve_smoke.json 3.0 1e6
    rm -f "$serve_baseline"

    echo "==> bench smoke (embed --smoke) + regression gate"
    baseline=$(mktemp)
    cp results/BENCH_embed_smoke.json "$baseline"
    cargo bench --locked --offline -p em-bench --bench embed -- --smoke
    bench_gate "$baseline" results/BENCH_embed_smoke.json
    rm -f "$baseline"

    echo "==> bench smoke (kernels --smoke) + regression gate"
    baseline=$(mktemp)
    cp results/BENCH_kernels_smoke.json "$baseline"
    cargo bench --locked --offline -p em-bench --bench kernels -- --smoke
    bench_gate "$baseline" results/BENCH_kernels_smoke.json 3.0 1e6
    rm -f "$baseline"

    echo "==> bench smoke (ann --smoke) + regression gate"
    # The ann bench aborts itself if the benchmarked index drops below
    # 0.95 recall against exact top-k, so this leg also gates quality.
    # Rows are ms-scale at smoke sizes — gate like the kernels bench.
    baseline=$(mktemp)
    cp results/BENCH_ann_smoke.json "$baseline"
    cargo bench --locked --offline -p em-bench --bench ann -- --smoke
    bench_gate "$baseline" results/BENCH_ann_smoke.json 3.0 1e6
    rm -f "$baseline"
fi

echo "==> ci green"
