#!/usr/bin/env bash
# Required pre-merge gate: the tier-1 build/test cycle, hermetically.
#
#   ./scripts/ci.sh           # fmt check + release build + full test suite
#   ./scripts/ci.sh --bench   # additionally smoke-run the experiment driver
#
# Everything runs with --locked --offline: the workspace has no external
# dependencies (see DESIGN.md, "Hermetic build substrate"), so any attempt
# to reach a registry is a regression this script must catch.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release (locked, offline)"
cargo build --release --locked --offline

echo "==> cargo test -q (locked, offline)"
cargo test -q --locked --offline

# Compare a fresh smoke run against its committed baseline, failing on
# >2x per-entry regressions. Smoke medians are single-shot and noisy; 2x
# catches algorithmic blow-ups (accidental O(n^2), lost cache, lost
# batching) without flaking on scheduler jitter.
bench_gate() {
    local baseline_json="$1" current_json="$2"
    python3 - "$baseline_json" "$current_json" <<'EOF'
import json, sys

THRESHOLD = 2.0
base = {(r["group"], r["id"]): r["median_ns"]
        for r in json.load(open(sys.argv[1]))["results"]}
cur = {(r["group"], r["id"]): r["median_ns"]
       for r in json.load(open(sys.argv[2]))["results"]}
failures = []
for key, b_ns in sorted(base.items()):
    c_ns = cur.get(key)
    if c_ns is None:
        failures.append(f"{key[0]}/{key[1]}: missing from current run")
        continue
    ratio = c_ns / b_ns if b_ns > 0 else 1.0
    flag = " REGRESSION" if ratio > THRESHOLD else ""
    print(f"  {key[0]}/{key[1]:<4} {b_ns/1e6:9.1f}ms -> {c_ns/1e6:9.1f}ms"
          f"  {ratio:5.2f}x{flag}")
    if ratio > THRESHOLD:
        failures.append(f"{key[0]}/{key[1]}: {ratio:.2f}x slower")
if failures:
    print("bench regression gate FAILED:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("bench regression gate passed")
EOF
}

if [[ "${1:-}" == "--bench" ]]; then
    echo "==> bench smoke (run_all --smoke) + regression gate"
    baseline=$(mktemp)
    cp results/BENCH_run_all_smoke.json "$baseline"
    cargo run --release --locked --offline -p em-bench --bin run_all -- --smoke
    bench_gate "$baseline" results/BENCH_run_all_smoke.json
    rm -f "$baseline"

    echo "==> bench smoke (embed --smoke) + regression gate"
    baseline=$(mktemp)
    cp results/BENCH_embed_smoke.json "$baseline"
    cargo bench --locked --offline -p em-bench --bench embed -- --smoke
    bench_gate "$baseline" results/BENCH_embed_smoke.json
    rm -f "$baseline"
fi

echo "==> ci green"
