#!/usr/bin/env bash
# Required pre-merge gate: the tier-1 build/test cycle, hermetically.
#
#   ./scripts/ci.sh           # fmt check + release build + full test suite
#   ./scripts/ci.sh --bench   # additionally smoke-run the experiment driver
#
# Everything runs with --locked --offline: the workspace has no external
# dependencies (see DESIGN.md, "Hermetic build substrate"), so any attempt
# to reach a registry is a regression this script must catch.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release (locked, offline)"
cargo build --release --locked --offline

echo "==> cargo test -q (locked, offline)"
cargo test -q --locked --offline

# Compare a fresh smoke run against its committed baseline, failing on
# >2x per-entry regressions. Smoke medians are single-shot and noisy; 2x
# catches algorithmic blow-ups (accidental O(n^2), lost cache, lost
# batching) without flaking on scheduler jitter. Entries below MIN_NS are
# reported but not gated: at ms scale a single-shot median is pure noise,
# and under the memoized evaluation substrate per-experiment attribution
# is schedule-dependent anyway (whichever runner goes first pays the
# shared store misses). The run_all/total wall-clock row is what the
# substrate is accountable for, and it always clears the floor.
bench_gate() {
    local baseline_json="$1" current_json="$2"
    python3 - "$baseline_json" "$current_json" <<'EOF'
import json, sys

THRESHOLD = 2.0
MIN_NS = 50e6
base = {(r["group"], r["id"]): r["median_ns"]
        for r in json.load(open(sys.argv[1]))["results"]}
cur = {(r["group"], r["id"]): r["median_ns"]
       for r in json.load(open(sys.argv[2]))["results"]}
failures = []
for key, b_ns in sorted(base.items()):
    c_ns = cur.get(key)
    if c_ns is None:
        failures.append(f"{key[0]}/{key[1]}: missing from current run")
        continue
    ratio = c_ns / b_ns if b_ns > 0 else 1.0
    gated = max(b_ns, c_ns) >= MIN_NS
    flag = " REGRESSION" if gated and ratio > THRESHOLD else \
           ("" if gated else " (below gate floor)")
    print(f"  {key[0]}/{key[1]:<5} {b_ns/1e6:9.1f}ms -> {c_ns/1e6:9.1f}ms"
          f"  {ratio:5.2f}x{flag}")
    if gated and ratio > THRESHOLD:
        failures.append(f"{key[0]}/{key[1]}: {ratio:.2f}x slower")
if failures:
    print("bench regression gate FAILED:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("bench regression gate passed")
EOF
}

if [[ "${1:-}" == "--bench" ]]; then
    echo "==> bench smoke (run_all --smoke) + regression gate"
    baseline=$(mktemp)
    cp results/BENCH_run_all_smoke.json "$baseline"
    cargo run --release --locked --offline -p em-bench --bin run_all -- --smoke
    # The gate covers the per-experiment rows AND the run_all/total
    # wall-clock row (the memoized-substrate headline number); fail
    # loudly if the driver ever stops emitting the total.
    grep -q '"group": "run_all", "id": "total"' results/BENCH_run_all_smoke.json \
        || { echo "run_all/total row missing from bench JSON" >&2; exit 1; }
    bench_gate "$baseline" results/BENCH_run_all_smoke.json
    rm -f "$baseline"

    echo "==> bench smoke (embed --smoke) + regression gate"
    baseline=$(mktemp)
    cp results/BENCH_embed_smoke.json "$baseline"
    cargo bench --locked --offline -p em-bench --bench embed -- --smoke
    bench_gate "$baseline" results/BENCH_embed_smoke.json
    rm -f "$baseline"
fi

echo "==> ci green"
